/**
 * @file
 * TestSystem implementation.
 */

#include "system.hh"

#include <algorithm>

#include "cache/invariants.hh"
#include "ckpt/checkpoint.hh"
#include "nf/copy_touch_drop.hh"
#include "nic/invariants.hh"

#include "sim/logging.hh"

namespace harness
{

Totals
Totals::operator-(const Totals &o) const
{
    Totals d;
    d.mlcWritebacks = mlcWritebacks - o.mlcWritebacks;
    d.nfMlcWritebacks = nfMlcWritebacks - o.nfMlcWritebacks;
    d.mlcPcieInvals = mlcPcieInvals - o.mlcPcieInvals;
    d.llcWritebacks = llcWritebacks - o.llcWritebacks;
    d.dramReads = dramReads - o.dramReads;
    d.dramWrites = dramWrites - o.dramWrites;
    d.rxPackets = rxPackets - o.rxPackets;
    d.rxDrops = rxDrops - o.rxDrops;
    d.processedPackets = processedPackets - o.processedPackets;
    return d;
}

TestSystem::TestSystem(const ExperimentConfig &config)
    : cfg(config), sim_(config.seed)
{
    const std::uint32_t numCores =
        cfg.numNfs + (cfg.withAntagonist ? 1 : 0);

    // Hierarchy: antagonist MLC override, Invalidatable-page oracle.
    cache::HierarchyConfig hierCfg = cfg.hier;
    hierCfg.numCores = numCores;
    if (cfg.withAntagonist) {
        hierCfg.mlcSizeOverride.resize(numCores, 0);
        hierCfg.mlcSizeOverride[numCores - 1] = cfg.antagonistMlcBytes;
    }
    hierCfg.pageAttributes = &alloc;
    hier = std::make_unique<cache::MemoryHierarchy>(sim_, "system",
                                                    hierCfg);

    ctrl = std::make_unique<idio::IdioController>(sim_, "system.idio",
                                                  *hier, cfg.idio);

    nf::NfConfig nfCfg = cfg.nf;
    nfCfg.selfInvalidate = cfg.idio.selfInvalidate;

    // One NF core's worth of compute + driver machinery, bound to
    // ring `queue` of `port`.
    auto buildNfPipeline = [&](std::uint32_t i, nic::Nic &port,
                               std::uint32_t queue) {
        const std::string base = "system.nf" + std::to_string(i);
        cores.push_back(std::make_unique<cpu::Core>(
            sim_, base + ".core", i, *hier));
        pools.push_back(std::make_unique<dpdk::Mempool>(
            alloc, cfg.nic.ringSize + cfg.mempoolExtra,
            dpdk::defaultBufBytes, /*invalidatable=*/true,
            cfg.recycleOrder));
        rxqs.push_back(std::make_unique<dpdk::RxQueue>(
            *cores.back(), port, *pools.back(), dpdk::PmdConfig{},
            queue));

        switch (cfg.nfKind) {
          case NfKind::TouchDrop:
            nfs.push_back(std::make_unique<nf::TouchDrop>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
          case NfKind::CopyTouchDrop:
            nfs.push_back(std::make_unique<nf::CopyTouchDrop>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg,
                alloc));
            break;
          case NfKind::L2Fwd:
            nfs.push_back(std::make_unique<nf::L2Fwd>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
          case NfKind::L2FwdDropPayload:
            nfs.push_back(std::make_unique<nf::L2FwdDropPayload>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
        }
    };

    std::uint8_t dscp = cfg.dscp;
    if (cfg.nfKind == NfKind::L2FwdDropPayload && dscp < 32)
        dscp = 40; // class-1 workload unless overridden

    auto buildGen = [&](const std::string &genName, nic::Nic &port,
                        const gen::TrafficConfig &tc) {
        switch (cfg.traffic) {
          case TrafficKind::Steady:
            gens.push_back(std::make_unique<gen::SteadyTrafficGen>(
                sim_, genName, port, tc, cfg.rateGbps));
            break;
          case TrafficKind::Bursty: {
            gen::BurstyTrafficGen::BurstParams bp;
            bp.burstPeriod = cfg.burstPeriod;
            bp.burstPackets = cfg.effectiveBurstPackets();
            bp.burstRateGbps = cfg.rateGbps;
            gens.push_back(std::make_unique<gen::BurstyTrafficGen>(
                sim_, genName, port, tc, bp));
            break;
          }
          case TrafficKind::Poisson:
            gens.push_back(std::make_unique<gen::PoissonTrafficGen>(
                sim_, genName, port, tc, cfg.rateGbps));
            break;
          case TrafficKind::None:
            break; // externally driven (e.g. trace replay)
        }
    };

    if (cfg.multiQueue()) {
        // One shared port, a ring per NF core, RSS/RETA steering over
        // a synthetic flow population (no EP rules): the paper's
        // many-core machine shape.
        if (cfg.rxQueues != cfg.numNfs)
            sim::fatal("multi-queue layout needs rxQueues == numNfs "
                       "(%u != %u): each ring is polled by exactly "
                       "one core",
                       cfg.rxQueues, cfg.numNfs);
        nic::NicConfig nicCfg = cfg.nic;
        nicCfg.numQueues = cfg.rxQueues;
        nicCfg.rssTableEntries = cfg.rssTableEntries;
        nics.push_back(std::make_unique<nic::Nic>(
            sim_, "system.port0.nic", nicCfg, *ctrl, alloc,
            numCores));
        for (std::uint32_t i = 0; i < cfg.numNfs; ++i)
            buildNfPipeline(i, *nics.back(), i);

        gen::TrafficConfig tc;
        tc.frameBytes = cfg.frameBytes;
        tc.synthFlows = cfg.totalFlows
                            ? cfg.totalFlows
                            : std::uint64_t(cfg.flowsPerNf) *
                                  cfg.numNfs;
        tc.synthDscp = dscp;
        buildGen("system.port0.gen", *nics.back(), tc);
    } else {
        // Legacy layout: one single-queue NIC port + generator per NF
        // core, flows pinned to the core with EP perfect-match rules.
        for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
            const std::string base = "system.nf" + std::to_string(i);
            nics.push_back(std::make_unique<nic::Nic>(
                sim_, base + ".nic", cfg.nic, *ctrl, alloc,
                numCores));
            buildNfPipeline(i, *nics.back(), 0);

            gen::TrafficConfig tc;
            tc.frameBytes = cfg.frameBytes;
            tc.flows = gen::makeFlows(
                cfg.flowsPerNf,
                static_cast<std::uint16_t>(5000 + 100 * i), dscp);
            for (auto &f : tc.flows)
                nics.back()->flowDirector().addRule(f.tuple, i);
            buildGen(base + ".gen", *nics.back(), tc);
        }
    }

    if (cfg.withAntagonist) {
        const sim::CoreId antagCore = numCores - 1;
        cores.push_back(std::make_unique<cpu::Core>(
            sim_, "system.antag.core", antagCore, *hier));
        antag = std::make_unique<nf::LlcAntagonist>(
            sim_, "system.antag", *cores.back(), alloc,
            cfg.antagonist);
    }

    // Runtime invariant checker: sweeps the whole model between
    // events so a silent model bug panics instead of skewing figures.
    checker = std::make_unique<sim::InvariantChecker>(
        sim_, "system.checker", cfg.invariantCheckPeriod);
    sim::registerEventQueueInvariants(*checker, sim_.eventq());
    cache::registerCacheInvariants(*checker, *hier);
    for (auto &n : nics)
        nic::registerNicInvariants(*checker, *n);
    checker->attach();

    recorder = std::make_unique<TimelineRecorder>(sim_);

    if (cfg.sharded)
        buildShardExecutor();
}

void
TestSystem::buildShardExecutor()
{
    // Declare the machine's timing-domain topology honestly and let
    // the plan fuse what is synchronously coupled. Today every edge
    // below is a sync edge — cores call the shared hierarchy
    // directly, the NIC DMA engine writes it directly, and the PMD
    // reads NIC ring state from core step events — so the plan
    // resolves to ONE conflict group and the executor degenerates to
    // a deterministic chunked runUntil over the Simulation queue
    // (bit-identical for any host thread count by construction).
    // When async memory/PCIe ports land, these edges become
    // asyncEdge(latency) calls and the same executor runs the groups
    // genuinely in parallel.
    sim::shard::ShardPlan plan;
    const auto llcD = plan.addDomain("llc");
    const auto dramD = plan.addDomain("dram");
    plan.syncEdge(llcD, dramD); // LLC misses call DRAM directly

    std::vector<sim::shard::DomainId> coreDs;
    for (const auto &c : cores) {
        const auto d = plan.addDomain(c->name() + "+mlc");
        plan.syncEdge(d, llcD); // coreRead/Write hit the shared LLC
        coreDs.push_back(d);
    }
    for (std::size_t i = 0; i < nics.size(); ++i) {
        const auto nd = plan.addDomain(nics[i]->name());
        plan.syncEdge(nd, llcD); // DMA writes land in the LLC
        if (cfg.multiQueue()) {
            // Every core's PMD polls a ring of the shared port.
            for (const auto d : coreDs)
                plan.syncEdge(d, nd);
        } else if (i < coreDs.size()) {
            plan.syncEdge(coreDs[i], nd); // core i polls port i
        }
    }

    const auto res = plan.resolve();
    if (res.groups != 1) {
        sim::fatal("shard plan resolved to %u conflict groups, but "
                   "all model components share one Simulation queue; "
                   "teach TestSystem to allocate per-group queues "
                   "before declaring async edges",
                   res.groups);
    }

    shardExec = std::make_unique<sim::shard::ShardedExecutor>(
        cfg.shardJobs);
    shardExec->addExternalDomain("model", sim_.eventq());
    const sim::Tick window =
        res.window != sim::maxTick
            ? res.window
            : std::max<sim::Tick>(1,
                                  sim::nsToTicks(cfg.shardWindowNs));
    shardExec->setWindow(window);
}

TestSystem::~TestSystem() = default;

void
TestSystem::start()
{
    SIM_ASSERT(!started, "TestSystem started twice");
    started = true;

    ctrl->start();
    for (auto &n : nics)
        n->start();
    for (auto &f : nfs)
        f->launch();
    if (antag) {
        antag->warmUp();
        antag->launch();
    }
    for (auto &g : gens)
        g->start();
}

void
TestSystem::runFor(sim::Tick duration)
{
    if (shardExec)
        shardExec->runUntil(sim_.now() + duration);
    else
        sim_.runFor(duration);
}

std::vector<std::uint8_t>
TestSystem::checkpoint()
{
    SIM_ASSERT(started, "checkpoint of an unstarted TestSystem");
    return ckpt::save(sim_);
}

void
TestSystem::restore(const std::vector<std::uint8_t> &blob)
{
    SIM_ASSERT(started, "restore into an unstarted TestSystem");
    ckpt::restore(sim_, blob);
}

Totals
TestSystem::totals() const
{
    Totals t;
    t.mlcWritebacks = hier->totalMlcWritebacks();
    for (std::uint32_t c = 0; c < cfg.numNfs; ++c) {
        t.nfMlcWritebacks += hier->mlcOf(c).writebacks.get() +
                             hier->mlcOf(c).cleanEvictions.get();
    }
    t.mlcPcieInvals = hier->totalMlcPcieInvals();
    t.llcWritebacks = hier->llcWritebacks();
    t.dramReads = hier->dram().readCount();
    t.dramWrites = hier->dram().writeCount();
    for (const auto &n : nics) {
        t.rxPackets += n->rxPackets.get();
        t.rxDrops += n->rxDrops.get();
    }
    for (const auto &f : nfs)
        t.processedPackets += f->packetsProcessed.get();
    return t;
}

void
TestSystem::trackDefaultSeries()
{
    recorder->trackRate("mlcWB", [this] {
        return hier->totalMlcWritebacks();
    });
    recorder->trackRate("llcWB",
                        [this] { return hier->llcWritebacks(); });
    recorder->trackRate("dmaWrites", [this] {
        return hier->pcieWrites.get();
    });
    recorder->trackRate("dramWrites", [this] {
        return hier->dram().writeCount();
    });
    recorder->trackRate("dramReads", [this] {
        return hier->dram().readCount();
    });
}

} // namespace harness
