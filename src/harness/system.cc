/**
 * @file
 * TestSystem implementation.
 */

#include "system.hh"

#include "cache/invariants.hh"
#include "ckpt/checkpoint.hh"
#include "nf/copy_touch_drop.hh"
#include "nic/invariants.hh"

#include "sim/logging.hh"

namespace harness
{

Totals
Totals::operator-(const Totals &o) const
{
    Totals d;
    d.mlcWritebacks = mlcWritebacks - o.mlcWritebacks;
    d.nfMlcWritebacks = nfMlcWritebacks - o.nfMlcWritebacks;
    d.mlcPcieInvals = mlcPcieInvals - o.mlcPcieInvals;
    d.llcWritebacks = llcWritebacks - o.llcWritebacks;
    d.dramReads = dramReads - o.dramReads;
    d.dramWrites = dramWrites - o.dramWrites;
    d.rxPackets = rxPackets - o.rxPackets;
    d.rxDrops = rxDrops - o.rxDrops;
    d.processedPackets = processedPackets - o.processedPackets;
    return d;
}

TestSystem::TestSystem(const ExperimentConfig &config)
    : cfg(config), sim_(config.seed)
{
    const std::uint32_t numCores =
        cfg.numNfs + (cfg.withAntagonist ? 1 : 0);

    // Hierarchy: antagonist MLC override, Invalidatable-page oracle.
    cache::HierarchyConfig hierCfg = cfg.hier;
    hierCfg.numCores = numCores;
    if (cfg.withAntagonist) {
        hierCfg.mlcSizeOverride.resize(numCores, 0);
        hierCfg.mlcSizeOverride[numCores - 1] = cfg.antagonistMlcBytes;
    }
    hierCfg.pageAttributes = &alloc;
    hier = std::make_unique<cache::MemoryHierarchy>(sim_, "system",
                                                    hierCfg);

    ctrl = std::make_unique<idio::IdioController>(sim_, "system.idio",
                                                  *hier, cfg.idio);

    nf::NfConfig nfCfg = cfg.nf;
    nfCfg.selfInvalidate = cfg.idio.selfInvalidate;

    // One NIC port + mempool + PMD + NF per NF core.
    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        const std::string base = "system.nf" + std::to_string(i);

        nics.push_back(std::make_unique<nic::Nic>(
            sim_, base + ".nic", cfg.nic, *ctrl, alloc, numCores));
        cores.push_back(std::make_unique<cpu::Core>(
            sim_, base + ".core", i, *hier));
        pools.push_back(std::make_unique<dpdk::Mempool>(
            alloc, cfg.nic.ringSize + cfg.mempoolExtra,
            dpdk::defaultBufBytes, /*invalidatable=*/true,
            cfg.recycleOrder));
        rxqs.push_back(std::make_unique<dpdk::RxQueue>(
            *cores.back(), *nics.back(), *pools.back()));

        switch (cfg.nfKind) {
          case NfKind::TouchDrop:
            nfs.push_back(std::make_unique<nf::TouchDrop>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
          case NfKind::CopyTouchDrop:
            nfs.push_back(std::make_unique<nf::CopyTouchDrop>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg,
                alloc));
            break;
          case NfKind::L2Fwd:
            nfs.push_back(std::make_unique<nf::L2Fwd>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
          case NfKind::L2FwdDropPayload:
            nfs.push_back(std::make_unique<nf::L2FwdDropPayload>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
        }

        // Flows of this NF steer to core i via EP perfect-match rules.
        std::uint8_t dscp = cfg.dscp;
        if (cfg.nfKind == NfKind::L2FwdDropPayload && dscp < 32)
            dscp = 40; // class-1 workload unless overridden
        gen::TrafficConfig tc;
        tc.frameBytes = cfg.frameBytes;
        tc.flows = gen::makeFlows(
            cfg.flowsPerNf,
            static_cast<std::uint16_t>(5000 + 100 * i), dscp);
        for (auto &f : tc.flows)
            nics.back()->flowDirector().addRule(f.tuple, i);

        const std::string genName = base + ".gen";
        switch (cfg.traffic) {
          case TrafficKind::Steady:
            gens.push_back(std::make_unique<gen::SteadyTrafficGen>(
                sim_, genName, *nics.back(), tc, cfg.rateGbps));
            break;
          case TrafficKind::Bursty: {
            gen::BurstyTrafficGen::BurstParams bp;
            bp.burstPeriod = cfg.burstPeriod;
            bp.burstPackets = cfg.effectiveBurstPackets();
            bp.burstRateGbps = cfg.rateGbps;
            gens.push_back(std::make_unique<gen::BurstyTrafficGen>(
                sim_, genName, *nics.back(), tc, bp));
            break;
          }
          case TrafficKind::Poisson:
            gens.push_back(std::make_unique<gen::PoissonTrafficGen>(
                sim_, genName, *nics.back(), tc, cfg.rateGbps));
            break;
          case TrafficKind::None:
            break; // externally driven (e.g. trace replay)
        }
    }

    if (cfg.withAntagonist) {
        const sim::CoreId antagCore = numCores - 1;
        cores.push_back(std::make_unique<cpu::Core>(
            sim_, "system.antag.core", antagCore, *hier));
        antag = std::make_unique<nf::LlcAntagonist>(
            sim_, "system.antag", *cores.back(), alloc,
            cfg.antagonist);
    }

    // Runtime invariant checker: sweeps the whole model between
    // events so a silent model bug panics instead of skewing figures.
    checker = std::make_unique<sim::InvariantChecker>(
        sim_, "system.checker", cfg.invariantCheckPeriod);
    sim::registerEventQueueInvariants(*checker, sim_.eventq());
    cache::registerCacheInvariants(*checker, *hier);
    for (auto &n : nics)
        nic::registerNicInvariants(*checker, *n);
    checker->attach();

    recorder = std::make_unique<TimelineRecorder>(sim_);
}

TestSystem::~TestSystem() = default;

void
TestSystem::start()
{
    SIM_ASSERT(!started, "TestSystem started twice");
    started = true;

    ctrl->start();
    for (auto &n : nics)
        n->start();
    for (auto &f : nfs)
        f->launch();
    if (antag) {
        antag->warmUp();
        antag->launch();
    }
    for (auto &g : gens)
        g->start();
}

void
TestSystem::runFor(sim::Tick duration)
{
    sim_.runFor(duration);
}

std::vector<std::uint8_t>
TestSystem::checkpoint()
{
    SIM_ASSERT(started, "checkpoint of an unstarted TestSystem");
    return ckpt::save(sim_);
}

void
TestSystem::restore(const std::vector<std::uint8_t> &blob)
{
    SIM_ASSERT(started, "restore into an unstarted TestSystem");
    ckpt::restore(sim_, blob);
}

Totals
TestSystem::totals() const
{
    Totals t;
    t.mlcWritebacks = hier->totalMlcWritebacks();
    for (std::uint32_t c = 0; c < cfg.numNfs; ++c) {
        t.nfMlcWritebacks += hier->mlcOf(c).writebacks.get() +
                             hier->mlcOf(c).cleanEvictions.get();
    }
    t.mlcPcieInvals = hier->totalMlcPcieInvals();
    t.llcWritebacks = hier->llcWritebacks();
    t.dramReads = hier->dram().readCount();
    t.dramWrites = hier->dram().writeCount();
    for (const auto &n : nics) {
        t.rxPackets += n->rxPackets.get();
        t.rxDrops += n->rxDrops.get();
    }
    for (const auto &f : nfs)
        t.processedPackets += f->packetsProcessed.get();
    return t;
}

void
TestSystem::trackDefaultSeries()
{
    recorder->trackRate("mlcWB", [this] {
        return hier->totalMlcWritebacks();
    });
    recorder->trackRate("llcWB",
                        [this] { return hier->llcWritebacks(); });
    recorder->trackRate("dmaWrites", [this] {
        return hier->pcieWrites.get();
    });
    recorder->trackRate("dramWrites", [this] {
        return hier->dram().writeCount();
    });
    recorder->trackRate("dramReads", [this] {
        return hier->dram().readCount();
    });
}

} // namespace harness
