/**
 * @file
 * TestSystem implementation.
 */

#include "system.hh"

#include <algorithm>
#include <cmath>

#include "cache/invariants.hh"
#include "ckpt/checkpoint.hh"
#include "nf/copy_touch_drop.hh"
#include "nic/invariants.hh"

#include "sim/logging.hh"

namespace harness
{

Totals
Totals::operator-(const Totals &o) const
{
    Totals d;
    d.mlcWritebacks = mlcWritebacks - o.mlcWritebacks;
    d.nfMlcWritebacks = nfMlcWritebacks - o.nfMlcWritebacks;
    d.mlcPcieInvals = mlcPcieInvals - o.mlcPcieInvals;
    d.llcWritebacks = llcWritebacks - o.llcWritebacks;
    d.dramReads = dramReads - o.dramReads;
    d.dramWrites = dramWrites - o.dramWrites;
    d.rxPackets = rxPackets - o.rxPackets;
    d.rxDrops = rxDrops - o.rxDrops;
    d.processedPackets = processedPackets - o.processedPackets;
    return d;
}

TestSystem::TestSystem(const ExperimentConfig &config)
    : cfg(config), sim_(config.seed)
{
    if (cfg.tenantMode()) {
        validateTenantConfig();
        // NF pipelines occupy cores [0, numNfs); antagonist-tenant
        // aggressor cores follow.
        cfg.numNfs = cfg.tenantNfCores();
    }
    const std::uint32_t numCores =
        cfg.tenantMode()
            ? cfg.tenantCores()
            : cfg.numNfs + (cfg.withAntagonist ? 1 : 0);

    // Hierarchy: antagonist MLC override, Invalidatable-page oracle.
    cache::HierarchyConfig hierCfg = cfg.hier;
    hierCfg.numCores = numCores;
    if (cfg.withAntagonist) {
        hierCfg.mlcSizeOverride.resize(numCores, 0);
        hierCfg.mlcSizeOverride[numCores - 1] = cfg.antagonistMlcBytes;
    }
    if (cfg.tenantMode() && numCores > cfg.numNfs) {
        // Aggressor cores run with the paper's shrunken MLC.
        hierCfg.mlcSizeOverride.resize(numCores, 0);
        for (std::uint32_t c = cfg.numNfs; c < numCores; ++c)
            hierCfg.mlcSizeOverride[c] = cfg.antagonistMlcBytes;
    }
    hierCfg.pageAttributes = &alloc;
    hier = std::make_unique<cache::MemoryHierarchy>(sim_, "system",
                                                    hierCfg);

    ctrl = std::make_unique<idio::IdioController>(sim_, "system.idio",
                                                  *hier, cfg.idio);

    // Split-link mode: domain queues and channels must exist before
    // the components that live on them (the NIC takes the PCIe
    // adapter as its DMA target).
    if (cfg.links.split()) {
        validateSplitConfig();
        buildSplitFabric();
    }

    nf::NfConfig nfCfg = cfg.nf;
    nfCfg.selfInvalidate = cfg.idio.selfInvalidate;

    // One NF core's worth of compute + driver machinery, bound to
    // ring `queue` of `port`.
    auto buildNfPipeline = [&](std::uint32_t i, nic::Nic &port,
                               std::uint32_t queue, NfKind kind) {
        const std::string base = "system.nf" + std::to_string(i);
        cores.push_back(std::make_unique<cpu::Core>(
            sim_, base + ".core", i, *hier));
        pools.push_back(std::make_unique<dpdk::Mempool>(
            alloc, cfg.nic.ringSize + cfg.mempoolExtra,
            dpdk::defaultBufBytes, /*invalidatable=*/true,
            cfg.recycleOrder));
        rxqs.push_back(std::make_unique<dpdk::RxQueue>(
            *cores.back(), port, *pools.back(), dpdk::PmdConfig{},
            queue));

        switch (kind) {
          case NfKind::TouchDrop:
            nfs.push_back(std::make_unique<nf::TouchDrop>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
          case NfKind::CopyTouchDrop:
            nfs.push_back(std::make_unique<nf::CopyTouchDrop>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg,
                alloc));
            break;
          case NfKind::L2Fwd:
            nfs.push_back(std::make_unique<nf::L2Fwd>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
          case NfKind::L2FwdDropPayload:
            nfs.push_back(std::make_unique<nf::L2FwdDropPayload>(
                sim_, base, *cores.back(), *rxqs.back(), nfCfg));
            break;
        }
    };

    std::uint8_t dscp = cfg.dscp;
    if (cfg.nfKind == NfKind::L2FwdDropPayload && dscp < 32)
        dscp = 40; // class-1 workload unless overridden

    auto buildGen = [&](const std::string &genName, nic::Nic &port,
                        const gen::TrafficConfig &tc, TrafficKind kind,
                        double rateGbps) {
        switch (kind) {
          case TrafficKind::Steady:
            gens.push_back(std::make_unique<gen::SteadyTrafficGen>(
                sim_, genName, port, tc, rateGbps));
            break;
          case TrafficKind::Bursty: {
            gen::BurstyTrafficGen::BurstParams bp;
            bp.burstPeriod = cfg.burstPeriod;
            bp.burstPackets = cfg.effectiveBurstPackets();
            bp.burstRateGbps = rateGbps;
            gens.push_back(std::make_unique<gen::BurstyTrafficGen>(
                sim_, genName, port, tc, bp));
            break;
          }
          case TrafficKind::Poisson:
            gens.push_back(std::make_unique<gen::PoissonTrafficGen>(
                sim_, genName, port, tc, rateGbps));
            break;
          case TrafficKind::None:
            break; // externally driven (e.g. trace replay)
        }
    };

    if (cfg.multiQueue()) {
        // One shared port, a ring per NF core, RSS/RETA steering over
        // a synthetic flow population (no EP rules): the paper's
        // many-core machine shape.
        if (cfg.rxQueues != cfg.numNfs)
            sim::fatal("multi-queue layout needs rxQueues == numNfs "
                       "(%u != %u): each ring is polled by exactly "
                       "one core",
                       cfg.rxQueues, cfg.numNfs);
        nic::NicConfig nicCfg = cfg.nic;
        nicCfg.numQueues = cfg.rxQueues;
        nicCfg.rssTableEntries = cfg.rssTableEntries;
        // In split mode the port lives on its own queue and DMA-writes
        // go over the PCIe link instead of straight into the
        // controller.
        nic::DmaTarget &dmaTarget =
            fabric ? static_cast<nic::DmaTarget &>(*pcieTarget)
                   : static_cast<nic::DmaTarget &>(*ctrl);
        if (fabric)
            sim_.bindConstructionQueue(fabric->nicQ);
        nics.push_back(std::make_unique<nic::Nic>(
            sim_, "system.port0.nic", nicCfg, dmaTarget, alloc,
            numCores));
        if (fabric)
            sim_.bindConstructionQueue(nullptr);
        for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
            if (fabric)
                sim_.bindConstructionQueue(fabric->coreQ[i]);
            buildNfPipeline(i, *nics.back(), i, cfg.nfKind);
            if (fabric)
                sim_.bindConstructionQueue(nullptr);
        }

        gen::TrafficConfig tc;
        tc.frameBytes = cfg.frameBytes;
        tc.synthFlows = cfg.totalFlows
                            ? cfg.totalFlows
                            : std::uint64_t(cfg.flowsPerNf) *
                                  cfg.numNfs;
        tc.synthDscp = dscp;
        if (fabric)
            sim_.bindConstructionQueue(fabric->nicQ);
        buildGen("system.port0.gen", *nics.back(), tc, cfg.traffic,
                 cfg.rateGbps);
        if (fabric)
            sim_.bindConstructionQueue(nullptr);
    } else {
        // Legacy layout: one single-queue NIC port + generator per NF
        // core, flows pinned to the core with EP perfect-match rules.
        // In tenant mode the per-core NF kind, traffic shape, rate
        // and departure tick come from the owning TenantSpec.
        struct NfPlan
        {
            NfKind kind;
            TrafficKind traffic;
            double rateGbps;
            sim::Tick stopAt;
        };
        std::vector<NfPlan> plan(
            cfg.numNfs,
            {cfg.nfKind, cfg.traffic, cfg.rateGbps, sim::maxTick});
        if (cfg.tenantMode()) {
            std::uint32_t c = 0;
            for (const auto &spec : cfg.tenants) {
                if (spec.antagonist)
                    continue;
                for (std::uint32_t k = 0; k < spec.cores; ++k, ++c) {
                    plan[c] = {spec.nfKind, spec.traffic,
                               spec.rateGbps > 0.0 ? spec.rateGbps
                                                   : cfg.rateGbps,
                               spec.stopAt};
                }
            }
        }

        for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
            const std::string base = "system.nf" + std::to_string(i);
            nics.push_back(std::make_unique<nic::Nic>(
                sim_, base + ".nic", cfg.nic, *ctrl, alloc,
                numCores));
            buildNfPipeline(i, *nics.back(), 0, plan[i].kind);

            gen::TrafficConfig tc;
            tc.frameBytes = cfg.frameBytes;
            tc.stopAt = plan[i].stopAt;
            tc.flows = gen::makeFlows(
                cfg.flowsPerNf,
                static_cast<std::uint16_t>(5000 + 100 * i), dscp);
            for (auto &f : tc.flows)
                nics.back()->flowDirector().addRule(f.tuple, i);
            buildGen(base + ".gen", *nics.back(), tc, plan[i].traffic,
                     plan[i].rateGbps);
        }
    }

    if (cfg.withAntagonist) {
        const sim::CoreId antagCore = numCores - 1;
        cores.push_back(std::make_unique<cpu::Core>(
            sim_, "system.antag.core", antagCore, *hier));
        antag = std::make_unique<nf::LlcAntagonist>(
            sim_, "system.antag", *cores.back(), alloc,
            cfg.antagonist);
    }

    if (cfg.tenantMode())
        buildTenants();

    if (fabric) {
        wireSplitMode();
    } else {
        // Runtime invariant checker: sweeps the whole model between
        // events so a silent model bug panics instead of skewing
        // figures. The sweeps read every domain's state from main-
        // queue events, which would race under a split plan — split
        // runs rely on the byte-equality gates instead.
        checker = std::make_unique<sim::InvariantChecker>(
            sim_, "system.checker", cfg.invariantCheckPeriod);
        sim::registerEventQueueInvariants(*checker, sim_.eventq());
        cache::registerCacheInvariants(*checker, *hier);
        for (auto &n : nics)
            nic::registerNicInvariants(*checker, *n);
        checker->attach();
    }

    recorder = std::make_unique<TimelineRecorder>(sim_);

    // The split plan always runs through the executor (the domain
    // queues need the windowed barrier protocol), with one worker
    // unless cfg.sharded asks for more.
    if (cfg.sharded || fabric)
        buildShardExecutor();
}

void
TestSystem::validateTenantConfig() const
{
    if (cfg.multiQueue())
        sim::fatal("tenant mode needs the legacy layout (rxQueues == "
                   "0): per-tenant NF kinds, rates and flow ranges "
                   "ride the per-core ports");
    if (cfg.withAntagonist)
        sim::fatal("tenant mode models aggressors as antagonist "
                   "tenants; drop withAntagonist");
    if (cfg.links.split())
        sim::fatal("tenant mode does not support split links (the "
                   "legacy per-NF-port shape has no NIC domain)");
    if (cfg.tenantNfCores() == 0)
        sim::fatal("tenant mode needs at least one NF tenant core");
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        const TenantSpec &spec = cfg.tenants[i];
        if (spec.name.empty())
            sim::fatal("tenant %zu has no name", i);
        if (spec.cores == 0)
            sim::fatal("tenant '%s' has no cores", spec.name.c_str());
        for (std::size_t j = 0; j < i; ++j)
            if (cfg.tenants[j].name == spec.name)
                sim::fatal("duplicate tenant name '%s'",
                           spec.name.c_str());
    }
}

void
TestSystem::buildTenants()
{
    std::vector<tenant::Tenant> descs;
    std::uint32_t nfCursor = 0;
    sim::CoreId antagCursor = cfg.numNfs;
    for (const TenantSpec &spec : cfg.tenants) {
        tenant::Tenant t;
        t.name = spec.name;
        t.slo = spec.slo;
        t.antagonist = spec.antagonist;
        t.flowsPerCore = spec.antagonist ? 0 : cfg.flowsPerNf;
        for (std::uint32_t k = 0; k < spec.cores; ++k) {
            if (spec.antagonist) {
                const sim::CoreId c = antagCursor++;
                t.cores.push_back(c);
                const std::string base = "system." + spec.name +
                                         ".antag" + std::to_string(k);
                cores.push_back(std::make_unique<cpu::Core>(
                    sim_, base + ".core", c, *hier));
                tenantAntags.push_back(
                    std::make_unique<nf::LlcAntagonist>(
                        sim_, base, *cores.back(), alloc,
                        cfg.antagonist));
            } else {
                const sim::CoreId c = nfCursor++;
                t.cores.push_back(c);
                t.flowPortBases.push_back(
                    static_cast<std::uint16_t>(5000 + 100 * c));
            }
        }
        descs.push_back(std::move(t));
    }

    tenantMgr = std::make_unique<tenant::TenantManager>(
        sim_, "system.tenants", *hier, std::move(descs),
        cfg.tenantPartition != TenantPartition::None);
    if (cfg.tenantPartition == TenantPartition::Ioca)
        ioca = std::make_unique<tenant::IocaController>(
            sim_, "system.ioca", *hier, *tenantMgr, cfg.ioca);
}

void
TestSystem::validateSplitConfig() const
{
    if (!cfg.multiQueue())
        sim::fatal("split-link mode needs the multi-queue layout "
                   "(rxQueues != 0): the legacy per-NF-port shape has "
                   "no single NIC domain to put behind the PCIe link");
    if (cfg.withAntagonist)
        sim::fatal("split-link mode does not support the LLC "
                   "antagonist: its core has no NF pipeline domain");
    if (cfg.nfKind == NfKind::L2Fwd ||
        cfg.nfKind == NfKind::L2FwdDropPayload)
        sim::fatal("split-link mode does not support transmitting NFs "
                   "(the TX path needs synchronous outbound DMA "
                   "reads)");
    if (cfg.links.pcieNs <= 0.0 || cfg.links.meshNs <= 0.0)
        sim::fatal("split-link mode needs both link latencies > 0 "
                   "(pcie %.1f ns, mesh %.1f ns): every cross-domain "
                   "coupling must carry a modelled delay",
                   cfg.links.pcieNs, cfg.links.meshNs);
}

void
TestSystem::buildSplitFabric()
{
    fabric = std::make_unique<SplitFabric>();
    fabric->nicQ = &sim_.addDomainQueue("nic");
    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        fabric->coreQ.push_back(
            &sim_.addDomainQueue("core" + std::to_string(i)));
    }

    const sim::Tick pcie =
        std::max<sim::Tick>(1, sim::nsToTicks(cfg.links.pcieNs));
    const sim::Tick mesh =
        std::max<sim::Tick>(1, sim::nsToTicks(cfg.links.meshNs));

    // Construction order is also the executor's flush order; keep it
    // stable or checkpoints change shape.
    fabric->nicToUncore = std::make_unique<SplitChannel>(
        sim_, "system.link.pcie.rx", *fabric->nicQ, sim_.eventq(),
        pcie);
    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        const std::string c = "core" + std::to_string(i);
        fabric->coreToUncore.push_back(std::make_unique<SplitChannel>(
            sim_, "system.link.mesh." + c + ".up", *fabric->coreQ[i],
            sim_.eventq(), mesh));
        fabric->uncoreToCore.push_back(std::make_unique<SplitChannel>(
            sim_, "system.link.mesh." + c + ".down", sim_.eventq(),
            *fabric->coreQ[i], mesh));
        fabric->nicToCore.push_back(std::make_unique<SplitChannel>(
            sim_, "system.link.pcie." + c + ".desc", *fabric->nicQ,
            *fabric->coreQ[i], pcie));
        fabric->coreToNic.push_back(std::make_unique<SplitChannel>(
            sim_, "system.link.pcie." + c + ".doorbell",
            *fabric->coreQ[i], *fabric->nicQ, pcie));
    }

    pcieTarget = std::make_unique<PcieDmaTarget>(*fabric->nicToUncore);
}

void
TestSystem::wireSplitMode()
{
    // ---- Uncore-side consumers (main queue) ----------------------

    fabric->nicToUncore->setHandler([this](const SplitMsg &m) {
        SIM_ASSERT(m.kind == SplitMsg::Kind::DmaWrite,
                   "unexpected message on the PCIe RX link");
        ctrl->dmaWrite(m.addr, m.meta);
    });

    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        fabric->coreToUncore[i]->setHandler([this](const SplitMsg &m) {
            switch (m.kind) {
              case SplitMsg::Kind::FillReq: {
                const auto r = hier->splitHandleFillReq(m.core, m.addr);
                SplitMsg rsp;
                rsp.kind = SplitMsg::Kind::FillRsp;
                rsp.core = m.core;
                rsp.addr = m.addr;
                rsp.a = r.extraLat;
                rsp.b = (r.dirty ? SplitMsg::flagDirty : 0) |
                        (r.io ? SplitMsg::flagIo : 0) |
                        (m.a ? SplitMsg::flagWrite : 0) |
                        (static_cast<std::uint64_t>(r.level)
                         << SplitMsg::levelShift);
                fabric->uncoreToCore[m.core]->send(std::move(rsp));
                break;
              }
              case SplitMsg::Kind::VictimWb:
                hier->splitHandleVictimWb(m.core, m.addr, m.a != 0,
                                          m.b != 0);
                break;
              case SplitMsg::Kind::CoreInval:
                hier->splitHandleCoreInval(m.core, m.addr);
                break;
              case SplitMsg::Kind::PrefetchRetire:
                hier->firePrefetchRetire(m.core);
                break;
              default:
                sim::fatal("unexpected message on a mesh up-link");
            }
        });
    }

    // ---- Core-side consumers -------------------------------------

    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        fabric->uncoreToCore[i]->setHandler([this](const SplitMsg &m) {
            switch (m.kind) {
              case SplitMsg::Kind::FillRsp:
                hier->splitInstallFill(
                    m.core, m.addr, (m.b & SplitMsg::flagDirty) != 0,
                    (m.b & SplitMsg::flagIo) != 0,
                    (m.b & SplitMsg::flagWrite) != 0);
                cores[m.core]->fillArrived(
                    m.a, static_cast<mem::HitLevel>(
                             m.b >> SplitMsg::levelShift));
                break;
              case SplitMsg::Kind::MlcInval:
                hier->splitHandleMlcInval(m.core, m.addr);
                break;
              case SplitMsg::Kind::BackInval:
                hier->splitHandleBackInval(m.core, m.addr);
                break;
              case SplitMsg::Kind::PrefetchInstall:
                hier->splitInstallPrefetch(m.core, m.addr, m.a != 0,
                                           m.b != 0);
                break;
              default:
                sim::fatal("unexpected message on a mesh down-link");
            }
        });
    }

    // ---- NIC-side consumers --------------------------------------

    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        fabric->coreToNic[i]->setHandler([this, i](const SplitMsg &m) {
            nic::RxRing &ring = nics[0]->rxRing(i);
            switch (m.kind) {
              case SplitMsg::Kind::RingConsume: {
                const std::uint32_t idx = ring.swConsume();
                SIM_ASSERT(idx == m.a, "ring consume out of order");
                break;
              }
              case SplitMsg::Kind::RingArm:
                ring.swArm(static_cast<std::uint32_t>(m.a), m.addr,
                           static_cast<std::uint32_t>(m.b));
                break;
              default:
                sim::fatal("unexpected message on a doorbell link");
            }
        });
    }

    // ---- Producers -----------------------------------------------

    cache::MemoryHierarchy::SplitHooks hooks;
    hooks.victimWb = [this](sim::CoreId c, sim::Addr addr, bool dirty,
                            bool io) {
        SplitMsg m;
        m.kind = SplitMsg::Kind::VictimWb;
        m.core = c;
        m.addr = addr;
        m.a = dirty;
        m.b = io;
        fabric->coreToUncore[c]->send(std::move(m));
    };
    hooks.prefetchRetire = [this](sim::CoreId c) {
        SplitMsg m;
        m.kind = SplitMsg::Kind::PrefetchRetire;
        m.core = c;
        fabric->coreToUncore[c]->send(std::move(m));
    };
    hooks.coreInval = [this](sim::CoreId c, sim::Addr addr) {
        SplitMsg m;
        m.kind = SplitMsg::Kind::CoreInval;
        m.core = c;
        m.addr = addr;
        fabric->coreToUncore[c]->send(std::move(m));
    };
    hooks.mlcInval = [this](sim::CoreId c, sim::Addr addr) {
        SplitMsg m;
        m.kind = SplitMsg::Kind::MlcInval;
        m.core = c;
        m.addr = addr;
        fabric->uncoreToCore[c]->send(std::move(m));
    };
    hooks.backInval = [this](sim::CoreId c, sim::Addr addr) {
        SplitMsg m;
        m.kind = SplitMsg::Kind::BackInval;
        m.core = c;
        m.addr = addr;
        fabric->uncoreToCore[c]->send(std::move(m));
    };
    hooks.prefetchInstall = [this](sim::CoreId c, sim::Addr addr,
                                   bool dirty, bool io) {
        SplitMsg m;
        m.kind = SplitMsg::Kind::PrefetchInstall;
        m.core = c;
        m.addr = addr;
        m.a = dirty;
        m.b = io;
        fabric->uncoreToCore[c]->send(std::move(m));
    };
    hier->enableSplitMode(std::move(hooks));

    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        cores[i]->setSplitFillDispatch([this, i](sim::Tick resumeAt) {
            if (!hier->hasPendingFills(i))
                return false;
            const auto fills = hier->takePendingFills(i);
            cores[i]->beginFillWait(
                static_cast<std::uint32_t>(fills.size()), resumeAt);
            for (const auto &f : fills) {
                SplitMsg m;
                m.kind = SplitMsg::Kind::FillReq;
                m.core = i;
                m.addr = f.addr;
                m.a = f.write;
                fabric->coreToUncore[i]->send(std::move(m));
            }
            return true;
        });

        rxqs[i]->enableSplitMode(
            [this, i](std::uint32_t descIdx) {
                SplitMsg m;
                m.kind = SplitMsg::Kind::RingConsume;
                m.core = i;
                m.a = descIdx;
                fabric->coreToNic[i]->send(std::move(m));
            },
            [this, i](std::uint32_t descIdx, sim::Addr bufAddr,
                      std::uint32_t mbufIdx) {
                SplitMsg m;
                m.kind = SplitMsg::Kind::RingArm;
                m.core = i;
                m.a = descIdx;
                m.addr = bufAddr;
                m.b = mbufIdx;
                fabric->coreToNic[i]->send(std::move(m));
            });
    }

    nics[0]->setDescReadyHook(
        [this](std::uint32_t queue, std::uint32_t descIdx) {
            const nic::RxSlot &slot =
                nics[0]->rxRing(queue).slot(descIdx);
            SplitMsg m;
            m.kind = SplitMsg::Kind::DescReady;
            m.core = queue;
            m.a = descIdx;
            m.b = slot.mbufIdx;
            m.pkt = slot.pkt;
            fabric->nicToCore[queue]->send(std::move(m));
        });

    for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
        fabric->nicToCore[i]->setHandler([this, i](const SplitMsg &m) {
            SIM_ASSERT(m.kind == SplitMsg::Kind::DescReady,
                       "unexpected message on a descriptor link");
            rxqs[i]->onDescReady(static_cast<std::uint32_t>(m.a),
                                 static_cast<std::uint32_t>(m.b),
                                 m.pkt);
        });
    }
}

void
TestSystem::buildShardExecutor()
{
    if (fabric) {
        // Split plan: every cross-domain coupling is a latency edge,
        // so resolve() keeps the per-core, NIC and uncore domains in
        // separate conflict groups and derives the conservative
        // window from the minimum link latency.
        const sim::Tick pcie = fabric->nicToUncore->latency();
        const sim::Tick mesh = fabric->coreToUncore.front()->latency();

        sim::shard::ShardPlan plan;
        const auto uncoreD = plan.addDomain("uncore");
        const auto nicD = plan.addDomain("nic");
        plan.asyncEdge(nicD, uncoreD, pcie);
        std::vector<sim::shard::DomainId> coreDs;
        for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
            const auto d = plan.addDomain("core" + std::to_string(i));
            plan.asyncEdge(d, uncoreD, mesh);
            plan.asyncEdge(d, nicD, pcie);
            coreDs.push_back(d);
        }
        const auto res = plan.resolve();
        SIM_ASSERT(res.groups == cfg.numNfs + 2,
                   "split plan unexpectedly fused domains");
        SIM_ASSERT(res.window == std::min(pcie, mesh),
                   "split plan window is not the minimum link latency");

        shardExec = std::make_unique<sim::shard::ShardedExecutor>(
            cfg.sharded ? cfg.shardJobs : 1);
        shardExec->addExternalDomain("uncore", sim_.eventq(),
                                     res.groupOf[uncoreD]);
        shardExec->addExternalDomain("nic", *fabric->nicQ,
                                     res.groupOf[nicD]);
        for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
            shardExec->addExternalDomain("core" + std::to_string(i),
                                         *fabric->coreQ[i],
                                         res.groupOf[coreDs[i]]);
        }
        shardExec->setWindow(res.window);

        // Flush order = construction order (checkpoint shape depends
        // on it).
        shardExec->registerChannel(fabric->nicToUncore.get());
        for (std::uint32_t i = 0; i < cfg.numNfs; ++i) {
            shardExec->registerChannel(fabric->coreToUncore[i].get());
            shardExec->registerChannel(fabric->uncoreToCore[i].get());
            shardExec->registerChannel(fabric->nicToCore[i].get());
            shardExec->registerChannel(fabric->coreToNic[i].get());
        }
        return;
    }

    // Legacy fused plan: declare the machine's timing-domain topology
    // honestly and let the plan fuse what is synchronously coupled.
    // Every edge below is a sync edge — cores call the shared
    // hierarchy directly, the NIC DMA engine writes it directly, and
    // the PMD reads NIC ring state from core step events — so the
    // plan resolves to ONE conflict group and the executor
    // degenerates to a deterministic chunked runUntil over the
    // Simulation queue (bit-identical for any host thread count by
    // construction). LinkLatencyConfig turns these couplings into
    // asyncEdge(latency) calls (the `fabric` branch above) and the
    // same executor runs the groups genuinely in parallel.
    sim::shard::ShardPlan plan;
    const auto llcD = plan.addDomain("llc");
    const auto dramD = plan.addDomain("dram");
    plan.syncEdge(llcD, dramD); // LLC misses call DRAM directly

    std::vector<sim::shard::DomainId> coreDs;
    for (const auto &c : cores) {
        const auto d = plan.addDomain(c->name() + "+mlc");
        plan.syncEdge(d, llcD); // coreRead/Write hit the shared LLC
        coreDs.push_back(d);
    }
    for (std::size_t i = 0; i < nics.size(); ++i) {
        const auto nd = plan.addDomain(nics[i]->name());
        plan.syncEdge(nd, llcD); // DMA writes land in the LLC
        if (cfg.multiQueue()) {
            // Every core's PMD polls a ring of the shared port.
            for (const auto d : coreDs)
                plan.syncEdge(d, nd);
        } else if (i < coreDs.size()) {
            plan.syncEdge(coreDs[i], nd); // core i polls port i
        }
    }

    const auto res = plan.resolve();
    shardExec = std::make_unique<sim::shard::ShardedExecutor>(
        cfg.shardJobs);
    shardExec->addExternalDomain("model", sim_.eventq());
    const sim::Tick window =
        res.window != sim::maxTick
            ? res.window
            : std::max<sim::Tick>(1,
                                  sim::nsToTicks(cfg.shardWindowNs));
    shardExec->setWindow(window);
}

TestSystem::~TestSystem() = default;

void
TestSystem::start()
{
    SIM_ASSERT(!started, "TestSystem started twice");
    started = true;

    ctrl->start();
    for (auto &n : nics)
        n->start();
    for (auto &f : nfs)
        f->launch();
    if (antag) {
        antag->warmUp();
        antag->launch();
    }
    for (auto &a : tenantAntags) {
        a->warmUp();
        a->launch();
    }
    for (auto &g : gens)
        g->start();
    if (ioca)
        ioca->start();
}

void
TestSystem::runFor(sim::Tick duration)
{
    if (shardExec)
        shardExec->runUntil(sim_.now() + duration);
    else
        sim_.runFor(duration);
}

std::vector<std::uint8_t>
TestSystem::checkpoint()
{
    SIM_ASSERT(started, "checkpoint of an unstarted TestSystem");
    return ckpt::save(sim_);
}

void
TestSystem::restore(const std::vector<std::uint8_t> &blob)
{
    SIM_ASSERT(started, "restore into an unstarted TestSystem");
    ckpt::restore(sim_, blob);
}

Totals
TestSystem::totals() const
{
    Totals t;
    t.mlcWritebacks = hier->totalMlcWritebacks();
    for (std::uint32_t c = 0; c < cfg.numNfs; ++c) {
        t.nfMlcWritebacks += hier->mlcOf(c).writebacks.get() +
                             hier->mlcOf(c).cleanEvictions.get();
    }
    t.mlcPcieInvals = hier->totalMlcPcieInvals();
    t.llcWritebacks = hier->llcWritebacks();
    t.dramReads = hier->dram().readCount();
    t.dramWrites = hier->dram().writeCount();
    for (const auto &n : nics) {
        t.rxPackets += n->rxPackets.get();
        t.rxDrops += n->rxDrops.get();
    }
    for (const auto &f : nfs)
        t.processedPackets += f->packetsProcessed.get();
    return t;
}

std::vector<TenantTotals>
TestSystem::tenantTotals() const
{
    std::vector<TenantTotals> out;
    if (!tenantMgr)
        return out;
    for (std::uint32_t id = 0; id < tenantMgr->numTenants(); ++id) {
        const tenant::Tenant &t = tenantMgr->tenant(id);
        TenantTotals tt;
        tt.name = t.name;
        tt.ways = t.ways;
        std::vector<std::uint64_t> samples;
        for (const sim::CoreId c : t.cores) {
            tt.mlcWritebacks += hier->mlcOf(c).writebacks.get() +
                                hier->mlcOf(c).cleanEvictions.get();
            if (c < nfs.size()) {
                tt.rxPackets += nics[c]->rxPackets.get();
                tt.rxDrops += nics[c]->rxDrops.get();
                tt.processedPackets += nfs[c]->packetsProcessed.get();
                const auto &s = nfs[c]->latency.rawSamples();
                samples.insert(samples.end(), s.begin(), s.end());
            }
        }
        // Exact nearest-rank percentiles over the merged member-NF
        // samples (same method as stats::LatencyRecorder).
        std::sort(samples.begin(), samples.end());
        auto pct = [&samples](double p) -> std::uint64_t {
            if (samples.empty())
                return 0;
            auto rank = static_cast<std::size_t>(std::ceil(
                p / 100.0 * static_cast<double>(samples.size())));
            if (rank == 0)
                rank = 1;
            return samples[rank - 1];
        };
        tt.p50 = pct(50.0);
        tt.p99 = pct(99.0);
        tt.p999 = pct(99.9);
        out.push_back(std::move(tt));
    }
    return out;
}

void
TestSystem::trackDefaultSeries()
{
    // The default series sample core-owned MLC counters from a main-
    // queue periodic, which would race under a split plan; scaling
    // runs compare totals() between runs instead.
    if (fabric)
        return;

    recorder->trackRate("mlcWB", [this] {
        return hier->totalMlcWritebacks();
    });
    recorder->trackRate("llcWB",
                        [this] { return hier->llcWritebacks(); });
    recorder->trackRate("dmaWrites", [this] {
        return hier->pcieWrites.get();
    });
    recorder->trackRate("dramWrites", [this] {
        return hier->dram().writeCount();
    });
    recorder->trackRate("dramReads", [this] {
        return hier->dram().readCount();
    });
}

} // namespace harness
