/**
 * @file
 * Whole-experiment configuration (paper Table I + Sec. VI).
 *
 * ExperimentConfig aggregates every knob of one simulated run: the
 * cache hierarchy, the IDIO policy, the NIC/ring geometry, the
 * workload layout (which NFs on which cores, optional LLCAntagonist),
 * and the traffic pattern. The defaults reproduce the paper's
 * methodology: two TouchDrop instances, 1024-entry rings, 1514-byte
 * packets, 10 ms burst period, burst length equal to ring-size
 * packets.
 */

#ifndef IDIO_HARNESS_EXPERIMENT_CONFIG_HH
#define IDIO_HARNESS_EXPERIMENT_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "idio/config.hh"
#include "nf/llc_antagonist.hh"
#include "dpdk/mbuf.hh"
#include "nf/network_function.hh"
#include "nic/nic.hh"
#include "tenant/ioca.hh"
#include "tenant/tenant.hh"

namespace harness
{

/** Which network function runs on a core. */
enum class NfKind
{
    TouchDrop,
    CopyTouchDrop, ///< copy-mode recycling (paper Sec. II-B, M1)
    L2Fwd,
    L2FwdDropPayload,
};

/** Printable NF name. */
const char *nfKindName(NfKind kind);

/** Traffic pattern. */
enum class TrafficKind
{
    Steady,
    Bursty,
    Poisson,
    None, ///< no built-in generator (caller drives the NICs)
};

/** How the LLC's non-I/O ways are shared between tenants. */
enum class TenantPartition
{
    None,   ///< all tenants may allocate anywhere (DDIO/IDIO sharing)
    Static, ///< equal CAT split, fixed for the whole run
    Ioca,   ///< adaptive split driven by tenant::IocaController
};

/** Printable partition-mode name. */
const char *tenantPartitionName(TenantPartition p);

/**
 * One tenant of a multi-tenant run (cfg.tenants). Tenant mode uses
 * the legacy I/O layout — one single-queue NIC port + generator per
 * NF core, EP-rule flow steering — because each tenant needs its own
 * NF kind, traffic shape and rate; antagonist tenants get aggressor
 * cores (shrunken MLC, no NF pipeline) instead.
 */
struct TenantSpec
{
    std::string name;
    tenant::SloClass slo = tenant::SloClass::Throughput;

    /** Cores (one NF pipeline each; aggressors for antagonists). */
    std::uint32_t cores = 1;

    /** True: run LLC aggressors instead of NF pipelines. */
    bool antagonist = false;

    /** @{ NF-tenant workload (ignored for antagonists). */
    NfKind nfKind = NfKind::TouchDrop;
    TrafficKind traffic = TrafficKind::Bursty;

    /** Per-port rate, Gbps (0 = the run-wide cfg.rateGbps). */
    double rateGbps = 0.0;

    /** Stop this tenant's traffic at this tick (departure churn). */
    sim::Tick stopAt = sim::maxTick;
    /** @} */
};

/**
 * Modelled interconnect-link latencies (paper Sec. III machine model).
 *
 * Zero (the default) keeps the legacy fully-synchronous coupling: every
 * cross-domain interaction is a same-tick call and the ShardPlan fuses
 * the whole machine into one conflict group. Nonzero latencies make the
 * NIC→LLC (PCIe) and core/MLC→LLC (mesh hop) couplings message-passing
 * links: the affected interactions travel over sim::shard::LinkChannel
 * edges with these delays, the plan splits into per-core + NIC + uncore
 * groups, and the ShardedExecutor window derives from the minimum link
 * latency. Both latencies must be set together (a split plan needs
 * every cross-group coupling to carry latency).
 */
struct LinkLatencyConfig
{
    /** NIC→root-complex (PCIe) one-way latency, ns. */
    double pcieNs = 0.0;

    /** Core/MLC→LLC (mesh hop) one-way latency, ns. */
    double meshNs = 0.0;

    /** True when the model runs in split (message-passing) mode. */
    bool split() const { return pcieNs > 0.0 || meshNs > 0.0; }
};

/**
 * Everything needed to build one TestSystem.
 */
struct ExperimentConfig
{
    /** Cache hierarchy (Table I defaults; numCores set by builder). */
    cache::HierarchyConfig hier;

    /** IDIO policy (defaults to the DDIO baseline). */
    idio::IdioConfig idio;

    /** Per-port NIC settings (ring size, PCIe bandwidth). */
    nic::NicConfig nic;

    /** NF execution-loop settings (selfInvalidate synced from idio). */
    nf::NfConfig nf;

    /** Antagonist settings, used when withAntagonist. */
    nf::AntagonistConfig antagonist;

    /** @{ Workload layout. */
    std::uint32_t numNfs = 2;
    NfKind nfKind = NfKind::TouchDrop;
    bool withAntagonist = false;

    /**
     * RX queues on one shared NIC port (0 = legacy layout: one
     * single-queue port per NF). When set, it must equal numNfs: the
     * system builds one multi-queue port whose flow director steers
     * packets across per-core rings via the RSS indirection table,
     * and NF i polls queue i. This is the paper's actual many-core
     * machine shape (one 100G port, per-core rings).
     */
    std::uint32_t rxQueues = 0;

    /** RETA entries for the multi-queue port (power of two). */
    std::uint32_t rssTableEntries = 128;

    /**
     * Total flow population for the multi-queue layout (0 = legacy
     * flowsPerNf * numNfs). Flows are synthesized procedurally, so
     * millions are affordable; steering is pure RSS (no EP rules).
     */
    std::uint64_t totalFlows = 0;
    /** @} */

    /** @{ Multi-tenant layout (src/tenant). */

    /**
     * Tenant set. Non-empty switches the system into tenant mode:
     * numNfs is derived from the specs (NF cores first in spec order,
     * then antagonist cores), and nfKind/traffic/rateGbps come from
     * each tenant's spec instead of the run-wide knobs. Incompatible
     * with multiQueue(), withAntagonist and split links.
     */
    std::vector<TenantSpec> tenants;

    /** LLC sharing mode between the tenants. */
    TenantPartition tenantPartition = TenantPartition::None;

    /** Adaptive-controller knobs (TenantPartition::Ioca). */
    tenant::IocaConfig ioca;

    bool tenantMode() const { return !tenants.empty(); }

    /** NF pipelines across all tenants. */
    std::uint32_t
    tenantNfCores() const
    {
        std::uint32_t n = 0;
        for (const auto &t : tenants)
            n += t.antagonist ? 0 : t.cores;
        return n;
    }

    /** All tenant cores (NF pipelines + aggressors). */
    std::uint32_t
    tenantCores() const
    {
        std::uint32_t n = 0;
        for (const auto &t : tenants)
            n += t.cores;
        return n;
    }
    /** @} */

    /** @{ Sharded execution (src/sim/shard). */

    /** Drive the run through a ShardedExecutor over the domain plan. */
    bool sharded = false;

    /** Host threads for conflict-group execution. */
    unsigned shardJobs = 1;

    /**
     * Conservative window width, ns, used when the resolved plan has
     * no cross-group async edge to derive it from.
     */
    double shardWindowNs = 1000.0;

    /** Modelled interconnect latencies (zero = legacy sync coupling). */
    LinkLatencyConfig links;
    /** @} */

    /** MLC size of the antagonist core (paper: 256 KB). */
    std::uint64_t antagonistMlcBytes = 256 * 1024;
    /** @} */

    /** @{ Traffic. */
    TrafficKind traffic = TrafficKind::Bursty;

    /** Steady rate or burst line rate, Gbps, per NIC port. */
    double rateGbps = 100.0;

    /** Burst period (paper: 10 ms). */
    sim::Tick burstPeriod = 10 * sim::oneMs;

    /** Packets per burst (0 = ring size, the paper's rule). */
    std::uint32_t burstPackets = 0;

    /** Ethernet frame bytes. */
    std::uint32_t frameBytes = 1514;

    /** Flows per NF (all steered to its core). */
    std::uint32_t flowsPerNf = 4;

    /** DSCP for generated flows (>= 32 marks app class 1). */
    std::uint8_t dscp = 0;
    /** @} */

    /**
     * Mempool head-room beyond the ring size (DPDK guidance: ring +
     * burst + slack). The pool recycles FIFO, so the I/O working set
     * is ring + extra buffers.
     */
    std::uint32_t mempoolExtra = 128;

    /** Buffer recycling order (see dpdk::Mempool; FIFO is faithful). */
    dpdk::RecycleOrder recycleOrder = dpdk::RecycleOrder::Fifo;

    /** RNG seed for the whole run. */
    std::uint64_t seed = 1;

    /**
     * Runtime invariant-checker sweep period in processed events
     * (0 = checker off). Sweeps verify the cache hierarchy, the NIC
     * rings and the event queue between events; see
     * src/sim/checker/invariant_checker.hh. Effective only in builds
     * with IDIO_CHECK_INVARIANTS compiled in.
     */
    std::uint64_t invariantCheckPeriod = 8192;

    /** Apply a named IDIO policy preset (also syncs nf/dscp knobs). */
    void
    applyPolicy(idio::Policy p)
    {
        idio = idio::IdioConfig::preset(p);
        nf.selfInvalidate = idio.selfInvalidate;
    }

    /** True when the run uses the one-port multi-queue layout. */
    bool multiQueue() const { return rxQueues != 0; }

    /** Effective packets per burst (per generator). */
    std::uint32_t
    effectiveBurstPackets() const
    {
        if (burstPackets)
            return burstPackets;
        // Paper rule: burst length = ring-size packets. The
        // multi-queue layout has one generator feeding rxQueues
        // rings, so the aggregate burst scales with the queue count.
        return multiQueue() ? nic.ringSize * rxQueues : nic.ringSize;
    }

    /**
     * Packets one burst delivers across the whole system: the legacy
     * layout runs one generator per NF, the multi-queue layout one
     * generator for the shared port.
     */
    std::uint64_t
    expectedBurstTotal() const
    {
        return multiQueue()
                   ? effectiveBurstPackets()
                   : std::uint64_t(effectiveBurstPackets()) * numNfs;
    }

    /** One-line summary for bench output. */
    std::string summary() const;
};

} // namespace harness

#endif // IDIO_HARNESS_EXPERIMENT_CONFIG_HH
