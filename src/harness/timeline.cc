/**
 * @file
 * TimelineRecorder implementation.
 */

#include "timeline.hh"

#include "sim/logging.hh"

namespace harness
{

TimelineRecorder::TimelineRecorder(sim::Simulation &simulation,
                                   sim::Tick interval)
    : simRef(simulation), period(interval),
      mtpsScale(1.0 / (sim::ticksToSeconds(interval) * 1e6)),
      event(simulation.eventq(), interval, [this] { sample(); },
            "timeline.sample")
{
}

void
TimelineRecorder::trackRate(const std::string &name,
                            std::function<std::uint64_t()> counter)
{
    auto t = std::make_unique<Track>();
    t->series = stats::Series(name);
    t->counter = std::move(counter);
    t->last = t->counter();
    tracks.push_back(std::move(t));
}

void
TimelineRecorder::trackValue(const std::string &name,
                             std::function<double()> value)
{
    auto t = std::make_unique<Track>();
    t->series = stats::Series(name);
    t->value = std::move(value);
    tracks.push_back(std::move(t));
}

void
TimelineRecorder::start()
{
    event.start();
}

void
TimelineRecorder::stop()
{
    event.stop();
}

void
TimelineRecorder::sample()
{
    const sim::Tick when = simRef.now();
    for (auto &t : tracks) {
        if (t->counter) {
            const std::uint64_t cur = t->counter();
            const double rate =
                static_cast<double>(cur - t->last) * mtpsScale;
            t->last = cur;
            t->series.append(when, rate);
        } else {
            t->series.append(when, t->value());
        }
    }
}

const stats::Series &
TimelineRecorder::series(const std::string &name) const
{
    for (const auto &t : tracks) {
        if (t->series.name() == name)
            return t->series;
    }
    sim::fatal("unknown timeline series '%s'", name.c_str());
}

std::vector<const stats::Series *>
TimelineRecorder::all() const
{
    std::vector<const stats::Series *> out;
    out.reserve(tracks.size());
    for (const auto &t : tracks)
        out.push_back(&t->series);
    return out;
}

} // namespace harness
