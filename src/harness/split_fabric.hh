/**
 * @file
 * Message fabric for the split (latency-edge) shard plan.
 *
 * With modelled interconnect latencies (LinkLatencyConfig), the
 * TestSystem decomposes into real timing domains: one per NF core
 * (core + L1 + MLC + PMD + mempool + NF), one for the NIC port (rings,
 * DMA engine, classifier, traffic generator), and the uncore (LLC,
 * directory, DRAM, IDIO controller) on the main queue. Every
 * cross-domain interaction travels as a SplitMsg over a
 * sim::shard::LinkChannel — a latency edge of the ShardPlan — instead
 * of a same-tick call:
 *
 *   NIC -> uncore  (PCIe)   DmaWrite
 *   core -> uncore (mesh)   FillReq, VictimWb, CoreInval,
 *                           PrefetchRetire
 *   uncore -> core (mesh)   FillRsp, MlcInval, BackInval,
 *                           PrefetchInstall
 *   NIC -> core    (PCIe)   DescReady
 *   core -> NIC    (PCIe)   RingConsume, RingArm
 *
 * All kinds of one directed pair share a single channel, so FIFO
 * delivery gives the orderings correctness needs for free: a core's
 * VictimWb always reaches the directory before its next FillReq for
 * the same set, and a fill install always lands before a subsequent
 * back-invalidation of the same line.
 *
 * Sharing a channel also concentrates traffic: LinkChannel flushes a
 * window's worth of same-delivery-tick SplitMsgs as one batched
 * scheduler insertion on the destination queue (see
 * sim/shard/link.hh), so fabric cost scales with delivery *ticks*,
 * not with message count.
 */

#ifndef IDIO_HARNESS_SPLIT_FABRIC_HH
#define IDIO_HARNESS_SPLIT_FABRIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "nic/dma.hh"
#include "nic/tlp.hh"
#include "sim/shard/link.hh"

namespace harness
{

/** One message on a split-plan link. */
struct SplitMsg
{
    enum class Kind : std::uint8_t
    {
        DmaWrite,        ///< NIC->uncore: inbound DMA line (addr, meta)
        FillReq,         ///< core->uncore: demand miss (a = write)
        FillRsp,         ///< uncore->core: a = extraLat, b = flags
        VictimWb,        ///< core->uncore: a = dirty, b = io
        CoreInval,       ///< core->uncore: self-invalidate upkeep
        MlcInval,        ///< uncore->core: DMA overwrite inval
        BackInval,       ///< uncore->core: directory-victim inval
        PrefetchInstall, ///< uncore->core: a = dirty, b = io
        PrefetchRetire,  ///< core->uncore: prefetched line retired
        DescReady,       ///< NIC->core: a = descIdx, b = mbufIdx, pkt
        RingConsume,     ///< core->NIC: a = descIdx
        RingArm,         ///< core->NIC: a = descIdx, b = mbufIdx, addr
    };

    Kind kind = Kind::FillReq;
    std::uint32_t core = 0; ///< core id (mesh) or queue index (PCIe)
    sim::Addr addr = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    nic::TlpMeta meta;      ///< DmaWrite only
    net::Packet pkt;        ///< DescReady only

    /** @{ FillRsp flag word (b). */
    static constexpr std::uint64_t flagDirty = 1u << 0;
    static constexpr std::uint64_t flagIo = 1u << 1;
    static constexpr std::uint64_t flagWrite = 1u << 2;
    static constexpr unsigned levelShift = 8;
    /** @} */

    static void
    serializeMsg(ckpt::Serializer &s, const SplitMsg &m)
    {
        s.writeU8(static_cast<std::uint8_t>(m.kind));
        s.writeU32(m.core);
        s.writeU64(m.addr);
        s.writeU64(m.a);
        s.writeU64(m.b);
        nic::serializeTlpMeta(s, m.meta);
        net::serializePacket(s, m.pkt);
    }

    static SplitMsg
    unserializeMsg(ckpt::Deserializer &d)
    {
        SplitMsg m;
        m.kind = static_cast<Kind>(d.readU8());
        m.core = d.readU32();
        m.addr = d.readU64();
        m.a = d.readU64();
        m.b = d.readU64();
        m.meta = nic::unserializeTlpMeta(d);
        m.pkt = net::unserializePacket(d);
        return m;
    }
};

/** The channel type every split link uses. */
using SplitChannel = sim::shard::LinkChannel<SplitMsg>;

/**
 * Root-complex adapter handed to the NIC as its DmaTarget: inbound
 * writes become DmaWrite messages on the PCIe link (the real IDIO
 * controller consumes them uncore-side). The egress path needs a
 * synchronous pull of dirty MLC data and is not modelled in split
 * mode.
 */
class PcieDmaTarget : public nic::DmaTarget
{
  public:
    explicit PcieDmaTarget(SplitChannel &link) : link(link) {}

    void
    dmaWrite(sim::Addr addr, const nic::TlpMeta &meta) override
    {
        SplitMsg m;
        m.kind = SplitMsg::Kind::DmaWrite;
        m.addr = addr;
        m.meta = meta;
        link.send(std::move(m));
    }

    sim::Tick
    dmaRead(sim::Addr) override
    {
        sim::fatal("outbound DMA reads are not supported in "
                   "split-link mode");
    }

  private:
    SplitChannel &link;
};

/**
 * The split topology's queues and channels, in construction order
 * (which is also the executor's channel-flush order).
 */
struct SplitFabric
{
    sim::EventQueue *nicQ = nullptr;
    std::vector<sim::EventQueue *> coreQ;

    std::unique_ptr<SplitChannel> nicToUncore;
    std::vector<std::unique_ptr<SplitChannel>> coreToUncore;
    std::vector<std::unique_ptr<SplitChannel>> uncoreToCore;
    std::vector<std::unique_ptr<SplitChannel>> nicToCore;
    std::vector<std::unique_ptr<SplitChannel>> coreToNic;
};

} // namespace harness

#endif // IDIO_HARNESS_SPLIT_FABRIC_HH
