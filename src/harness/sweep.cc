/**
 * @file
 * SweepRunner implementation.
 */

#include "sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace harness
{

unsigned
SweepRunner::hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
SweepRunner::plannedWorkers(std::size_t count) const
{
    std::size_t w = std::min<std::size_t>(nJobs, count);
    if (clampToHardware)
        w = std::min<std::size_t>(w, hardwareJobs());
    return static_cast<unsigned>(w);
}

void
SweepRunner::runTasks(std::size_t count,
                      const std::function<void(std::size_t)> &task) const
{
    if (count == 0)
        return;

    const unsigned workers = plannedWorkers(count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            task(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errMutex;
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                task(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace harness
