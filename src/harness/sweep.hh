/**
 * @file
 * Parallel experiment sweep runner.
 *
 * Every figure bench evaluates a list of independent ExperimentConfigs
 * (policies x rates x sensitivity knobs). Each simulation is strictly
 * single-threaded and deterministic — a Simulation owns its event
 * queue, stats registry and RNGs, and src/ has no mutable global
 * state — so whole configs can run concurrently without perturbing
 * results. SweepRunner executes such a list on a small thread pool
 * and collects results in config order: the output of `map` is
 * bit-identical whatever the job count.
 *
 * The worker count is clamped to min(jobs, hardware threads, tasks):
 * oversubscribing a low-thread host only adds context-switch overhead
 * (we measured parallel sweeps *slower* than serial on a 1-CPU box),
 * and a pool that would end up with one worker runs serially in-place
 * instead of paying thread start-up for nothing.
 */

#ifndef IDIO_HARNESS_SWEEP_HH
#define IDIO_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace harness
{

/**
 * Runs a list of independent simulation tasks on up to `jobs` threads.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker threads; <=1 means run serially in-place. */
    explicit SweepRunner(unsigned jobs = 1) : nJobs(jobs ? jobs : 1) {}

    /** Host hardware thread count (>=1); the `--jobs=0` default. */
    static unsigned hardwareJobs();

    unsigned jobs() const { return nJobs; }

    /**
     * Worker threads that would actually run @p count tasks:
     * min(jobs, hardware threads, count). A result <= 1 means the
     * serial in-place path.
     */
    unsigned plannedWorkers(std::size_t count) const;

    /**
     * Evaluate `fn(items[i])` for every item and return the results in
     * item order. The result type must be default-constructible.
     * Exceptions from tasks are captured; the first one (by completion
     * order) is rethrown after all workers join.
     */
    template <typename T, typename Fn>
    auto
    map(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        using R = std::invoke_result_t<Fn &, const T &>;
        std::vector<R> results(items.size());
        runTasks(items.size(),
                 [&](std::size_t i) { results[i] = fn(items[i]); });
        return results;
    }

  private:
    friend struct SweepRunnerTestAccess;

    /** Run task(0..count-1), work-stealing via an atomic index. */
    void runTasks(std::size_t count,
                  const std::function<void(std::size_t)> &task) const;

    unsigned nJobs;
    bool clampToHardware = true;
};

/**
 * Test-only access to SweepRunner internals.
 *
 * The thread-pool unit tests (error propagation, work stealing) need
 * a real multi-worker pool even on single-CPU CI hosts, so they
 * disable the hardware clamp; production code must never touch this.
 */
struct SweepRunnerTestAccess
{
    static void
    disableHardwareClamp(SweepRunner &r)
    {
        r.clampToHardware = false;
    }
};

} // namespace harness

#endif // IDIO_HARNESS_SWEEP_HH
