/**
 * @file
 * Parallel experiment sweep runner.
 *
 * Every figure bench evaluates a list of independent ExperimentConfigs
 * (policies x rates x sensitivity knobs). Each simulation is strictly
 * single-threaded and deterministic — a Simulation owns its event
 * queue, stats registry and RNGs, and src/ has no mutable global
 * state — so whole configs can run concurrently without perturbing
 * results. SweepRunner executes such a list on a small thread pool
 * and collects results in config order: the output of `map` is
 * bit-identical whatever the job count.
 */

#ifndef IDIO_HARNESS_SWEEP_HH
#define IDIO_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace harness
{

/**
 * Runs a list of independent simulation tasks on up to `jobs` threads.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker threads; <=1 means run serially in-place. */
    explicit SweepRunner(unsigned jobs = 1) : nJobs(jobs ? jobs : 1) {}

    /** Host hardware thread count (>=1); the `--jobs=0` default. */
    static unsigned hardwareJobs();

    unsigned jobs() const { return nJobs; }

    /**
     * Evaluate `fn(items[i])` for every item and return the results in
     * item order. The result type must be default-constructible.
     * Exceptions from tasks are captured; the first one (by completion
     * order) is rethrown after all workers join.
     */
    template <typename T, typename Fn>
    auto
    map(const std::vector<T> &items, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const T &>>
    {
        using R = std::invoke_result_t<Fn &, const T &>;
        std::vector<R> results(items.size());
        runTasks(items.size(),
                 [&](std::size_t i) { results[i] = fn(items[i]); });
        return results;
    }

  private:
    /** Run task(0..count-1), work-stealing via an atomic index. */
    void runTasks(std::size_t count,
                  const std::function<void(std::size_t)> &task) const;

    unsigned nJobs;
};

} // namespace harness

#endif // IDIO_HARNESS_SWEEP_HH
