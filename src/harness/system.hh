/**
 * @file
 * Full-system builder.
 *
 * TestSystem instantiates and wires one complete simulated server from
 * an ExperimentConfig. Two I/O layouts exist: the legacy one (one
 * single-queue NIC port + mempool + PMD + network function per NF
 * core, EP-rule steering) and the multi-queue one (cfg.rxQueues != 0:
 * one shared port with a ring per core, RSS/RETA steering over a
 * synthetic flow population — the paper's actual machine shape).
 * With cfg.sharded, runFor() drives the model through a
 * conservative-window ShardedExecutor built from the declared domain
 * topology. cfg.tenants switches the legacy layout into tenant mode:
 * per-tenant NF kinds/traffic on the NF cores, aggressor cores for
 * antagonist tenants, and a tenant::TenantManager (plus optional
 * IocaController) programming the LLC's CAT way partition. Every
 * bench, example and integration test builds on this class.
 */

#ifndef IDIO_HARNESS_SYSTEM_HH
#define IDIO_HARNESS_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "dpdk/mbuf.hh"
#include "dpdk/rx_queue.hh"
#include "gen/traffic.hh"
#include "harness/experiment_config.hh"
#include "harness/split_fabric.hh"
#include "harness/timeline.hh"
#include "idio/controller.hh"
#include "mem/phys_alloc.hh"
#include "nf/l2fwd.hh"
#include "nf/llc_antagonist.hh"
#include "nf/touch_drop.hh"
#include "nic/nic.hh"
#include "sim/checker/invariant_checker.hh"
#include "sim/shard/executor.hh"
#include "sim/simulation.hh"
#include "tenant/ioca.hh"
#include "tenant/manager.hh"

namespace harness
{

/** Snapshot of system-wide transaction counts. */
struct Totals
{
    std::uint64_t mlcWritebacks = 0;   ///< MLC->LLC evictions
    std::uint64_t nfMlcWritebacks = 0; ///< same, NF cores only
    std::uint64_t mlcPcieInvals = 0;   ///< MLC invals by DMA writes
    std::uint64_t llcWritebacks = 0;   ///< LLC->DRAM dirty evictions
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t rxPackets = 0;
    std::uint64_t rxDrops = 0;
    std::uint64_t processedPackets = 0;

    Totals operator-(const Totals &o) const;

    /** Field-wise equality; the sweep determinism tests rely on it. */
    bool operator==(const Totals &o) const = default;
};

/**
 * Per-tenant slice of the run (tenant mode only). Latency percentiles
 * are exact nearest-rank over the merged samples of the tenant's NFs;
 * antagonist tenants report zero traffic.
 */
struct TenantTotals
{
    std::string name;
    std::uint64_t rxPackets = 0;
    std::uint64_t rxDrops = 0;
    std::uint64_t processedPackets = 0;
    std::uint64_t mlcWritebacks = 0; ///< member cores, dirty + clean
    sim::Tick p50 = 0;               ///< per-packet latency, ticks
    sim::Tick p99 = 0;
    sim::Tick p999 = 0;
    std::uint32_t ways = 0; ///< current partition (0 = unpartitioned)

    bool operator==(const TenantTotals &o) const = default;
};

/**
 * One wired simulated server.
 */
class TestSystem
{
  public:
    explicit TestSystem(const ExperimentConfig &config);
    ~TestSystem();

    TestSystem(const TestSystem &) = delete;
    TestSystem &operator=(const TestSystem &) = delete;

    /** Start all components (NFs, traffic, control planes). */
    void start();

    /** Run for @p duration more simulated time. */
    void runFor(sim::Tick duration);

    /**
     * Serialize the full dynamic state (ckpt::save). Must be called
     * between events — i.e.\ from harness code around runFor()
     * boundaries — on a started system.
     */
    std::vector<std::uint8_t> checkpoint();

    /**
     * Overwrite this (started) system's dynamic state with @p blob.
     * The system must have been built from the same configuration and
     * seed as the one that produced the blob; any drift is fatal.
     * Subsequent execution is bit-identical to the checkpointed run.
     */
    void restore(const std::vector<std::uint8_t> &blob);

    /** @{ Component access. */
    sim::Simulation &simulation() { return sim_; }
    cache::MemoryHierarchy &hierarchy() { return *hier; }
    idio::IdioController &controller() { return *ctrl; }
    nic::Nic &nicPort(std::uint32_t i) { return *nics[i]; }
    cpu::Core &core(std::uint32_t i) { return *cores[i]; }
    nf::NetworkFunction &nf(std::uint32_t i) { return *nfs[i]; }
    dpdk::Mempool &mempool(std::uint32_t i) { return *pools[i]; }
    gen::TrafficSource &trafficGen(std::uint32_t i) { return *gens[i]; }
    nf::LlcAntagonist *antagonist() { return antag.get(); }
    tenant::TenantManager *tenantManager() { return tenantMgr.get(); }
    tenant::IocaController *iocaController() { return ioca.get(); }
    sim::InvariantChecker &invariantChecker() { return *checker; }
    TimelineRecorder &timeline() { return *recorder; }
    mem::PhysAllocator &allocator() { return alloc; }
    const ExperimentConfig &config() const { return cfg; }
    std::uint32_t numNfs() const
    {
        return static_cast<std::uint32_t>(nfs.size());
    }

    /**
     * Non-null when runFor is driven through the executor: always in
     * split-link mode (the domain queues need the windowed barrier
     * protocol), and with cfg.sharded on the legacy fused plan.
     */
    sim::shard::ShardedExecutor *shardExecutor()
    {
        return shardExec.get();
    }

    /** Non-null in split-link mode (cfg.links.split()). */
    SplitFabric *splitFabric() { return fabric.get(); }
    /** @} */

    /** Current transaction totals. */
    Totals totals() const;

    /** Per-tenant totals (empty outside tenant mode). */
    std::vector<TenantTotals> tenantTotals() const;

    /** Register the default figure series on the timeline. */
    void trackDefaultSeries();

  private:
    ExperimentConfig cfg;
    sim::Simulation sim_;
    mem::PhysAllocator alloc;

    std::unique_ptr<cache::MemoryHierarchy> hier;
    std::unique_ptr<idio::IdioController> ctrl;
    std::vector<std::unique_ptr<nic::Nic>> nics;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    std::vector<std::unique_ptr<dpdk::Mempool>> pools;
    std::vector<std::unique_ptr<dpdk::RxQueue>> rxqs;
    std::vector<std::unique_ptr<nf::NetworkFunction>> nfs;
    std::vector<std::unique_ptr<gen::TrafficSource>> gens;
    std::unique_ptr<nf::LlcAntagonist> antag;
    std::vector<std::unique_ptr<nf::LlcAntagonist>> tenantAntags;
    std::unique_ptr<tenant::TenantManager> tenantMgr;
    std::unique_ptr<tenant::IocaController> ioca;
    std::unique_ptr<sim::InvariantChecker> checker;
    std::unique_ptr<TimelineRecorder> recorder;
    std::unique_ptr<sim::shard::ShardedExecutor> shardExec;

    /** @{ Split-link mode (cfg.links.split()). */
    std::unique_ptr<SplitFabric> fabric;
    std::unique_ptr<PcieDmaTarget> pcieTarget;

    void validateSplitConfig() const;
    void buildSplitFabric();
    void wireSplitMode();
    /** @} */

    void buildShardExecutor();

    void validateTenantConfig() const;
    void buildTenants();

    bool started = false;
};

} // namespace harness

#endif // IDIO_HARNESS_SYSTEM_HH
