/**
 * @file
 * Trace artifact output implementation.
 */

#include "trace_artifacts.hh"

#include <fstream>

#include "stats/json.hh"
#include "trace/chrome_export.hh"

namespace harness
{

void
enableTracing(TestSystem &system, std::size_t eventsPerSource)
{
    trace::Tracer &tracer = system.simulation().tracer();
    tracer.setCapacity(eventsPerSource);
    tracer.enable();
}

void
writeTraceArtifacts(const std::string &path, TestSystem &system)
{
    if (!trace::writeChromeTrace(path, system.simulation().tracer()))
        sim::fatal("cannot write trace file '%s'", path.c_str());

    const Totals t = system.totals();
    cache::MemoryHierarchy &hier = system.hierarchy();
    std::uint64_t prefetchFills = 0;
    std::uint64_t selfInvals = 0;
    for (std::uint32_t c = 0; c < hier.numCores(); ++c) {
        prefetchFills += hier.mlcOf(c).prefetchFills.get();
        selfInvals += hier.mlcOf(c).selfInvals.get();
    }

    const std::string sidecar = path + ".totals.json";
    std::ofstream ofs(sidecar);
    if (!ofs)
        sim::fatal("cannot write totals sidecar '%s'",
                   sidecar.c_str());
    stats::JsonWriter w(ofs);
    w.beginObject();
    w.field("formatVersion", totalsFormatVersion);
    w.field("rxPackets", t.rxPackets);
    w.field("rxDrops", t.rxDrops);
    w.field("processedPackets", t.processedPackets);
    w.field("mlcWritebacks", t.mlcWritebacks);
    w.field("mlcPcieInvals", t.mlcPcieInvals);
    w.field("llcWritebacks", t.llcWritebacks);
    w.field("pcieWrites", hier.pcieWrites.get());
    w.field("ddioUpdates", hier.llc().ddioUpdates.get());
    w.field("ddioAllocs", hier.llc().ddioAllocs.get());
    w.field("directDramWrites", hier.directDramWrites.get());
    w.field("mlcPrefetchFills", prefetchFills);
    w.field("mlcSelfInvals", selfInvals);
    w.field("traceDropped",
            system.simulation().tracer().totalDropped());

    // Tenant mode: per-tenant slices, with the core->tenant map the
    // trace analyzer needs to attribute events (nf.consume carries the
    // consuming core; NIC sources are per-core in the legacy layout).
    const std::vector<TenantTotals> tenants = system.tenantTotals();
    if (!tenants.empty()) {
        const tenant::TenantManager &mgr = *system.tenantManager();
        w.beginArray("tenants");
        for (std::uint32_t id = 0; id < tenants.size(); ++id) {
            const TenantTotals &tt = tenants[id];
            const tenant::Tenant &t = mgr.tenant(id);
            w.beginObject();
            w.field("name", tt.name);
            w.field("slo", tenant::sloClassName(t.slo));
            w.field("antagonist", t.antagonist);
            w.beginArray("cores");
            for (const sim::CoreId c : t.cores)
                w.value(static_cast<std::uint64_t>(c));
            w.end();
            w.field("rxPackets", tt.rxPackets);
            w.field("rxDrops", tt.rxDrops);
            w.field("processedPackets", tt.processedPackets);
            w.field("mlcWritebacks", tt.mlcWritebacks);
            w.field("ways", tt.ways);
            w.field("p50Us", sim::ticksToUs(tt.p50));
            w.field("p99Us", sim::ticksToUs(tt.p99));
            w.field("p999Us", sim::ticksToUs(tt.p999));
            w.end();
        }
        w.end();
    }
    w.end();
    ofs << "\n";
}

} // namespace harness
