/**
 * @file
 * Trace artifact output for traced TestSystem runs.
 *
 * A traced run produces two files:
 *
 *  - PATH: the Chrome trace-event JSON (open in Perfetto or
 *    chrome://tracing);
 *  - PATH.totals.json: a sidecar with the same run's
 *    harness::Totals and the placement counters, so
 *    tools/trace_summary.py --check-totals can assert that the
 *    trace-derived counts exactly match what the simulator counted.
 */

#ifndef IDIO_HARNESS_TRACE_ARTIFACTS_HH
#define IDIO_HARNESS_TRACE_ARTIFACTS_HH

#include <string>

#include "harness/system.hh"

namespace harness
{

/**
 * Format version of the PATH.totals.json sidecar. Bump whenever a
 * field is renamed, removed, or its meaning changes;
 * tools/trace_summary.py --check-totals refuses sidecars whose
 * version it does not understand.
 */
constexpr std::uint32_t totalsFormatVersion = 1;

/**
 * Enable event tracing on @p system (call before start()).
 *
 * @param eventsPerSource Per-source ring capacity; the default holds
 *        a full single-burst bench run without wraparound.
 */
void enableTracing(TestSystem &system,
                   std::size_t eventsPerSource = 1u << 18);

/**
 * Write the trace of a finished run to @p path and the totals
 * sidecar to @p path`.totals.json`. Fatals when a file cannot be
 * written.
 */
void writeTraceArtifacts(const std::string &path, TestSystem &system);

} // namespace harness

#endif // IDIO_HARNESS_TRACE_ARTIFACTS_HH
