/**
 * @file
 * Timeline sampling for the paper's rate plots.
 *
 * The paper's Figs. 5, 9, 11 and 13 plot MLC/LLC writeback and DMA
 * request *rates* sampled every 10 us, in million transactions per
 * second (MTPS). TimelineRecorder samples registered counters on that
 * cadence and converts deltas to MTPS series.
 */

#ifndef IDIO_HARNESS_TIMELINE_HH
#define IDIO_HARNESS_TIMELINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/periodic.hh"
#include "sim/simulation.hh"
#include "stats/series.hh"

namespace harness
{

/**
 * Periodic counter-rate sampler.
 */
class TimelineRecorder
{
  public:
    /**
     * @param simulation Owning simulation.
     * @param interval Sampling cadence (paper: 10 us).
     */
    explicit TimelineRecorder(sim::Simulation &simulation,
                              sim::Tick interval = 10 * sim::oneUs);

    /**
     * Track the rate of a monotonically increasing counter; the series
     * records (tick, MTPS) points.
     */
    void trackRate(const std::string &name,
                   std::function<std::uint64_t()> counter);

    /** Track a raw value (sampled, not differentiated). */
    void trackValue(const std::string &name,
                    std::function<double()> value);

    /** Begin sampling. */
    void start();

    /** Stop sampling. */
    void stop();

    /** Access a series by name; fatal when unknown. */
    const stats::Series &series(const std::string &name) const;

    /** All series, in registration order. */
    std::vector<const stats::Series *> all() const;

    sim::Tick interval() const { return period; }

  private:
    struct Track
    {
        stats::Series series;
        std::function<std::uint64_t()> counter; // rate mode
        std::function<double()> value;          // value mode
        std::uint64_t last = 0;
    };

    void sample();

    sim::Simulation &simRef;
    sim::Tick period;
    double mtpsScale; // 1 / (interval_seconds * 1e6)
    std::vector<std::unique_ptr<Track>> tracks;
    sim::PeriodicEvent event;
};

} // namespace harness

#endif // IDIO_HARNESS_TIMELINE_HH
