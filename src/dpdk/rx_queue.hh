/**
 * @file
 * Polling-mode RX driver.
 *
 * RxQueue is the DPDK PMD: it arms the NIC's descriptor ring with
 * mempool buffers, polls descriptors for the DD bit, hands completed
 * mbufs to the network function in bursts (default 32), and re-arms
 * consumed descriptors. Every descriptor read, mbuf-metadata write,
 * free-list touch, and descriptor re-arm is charged to the owning
 * core through the cache hierarchy, so driver-induced cache traffic
 * (a real contributor to the paper's MLC writeback rates) is modelled.
 */

#ifndef IDIO_DPDK_RX_QUEUE_HH
#define IDIO_DPDK_RX_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cpu/core.hh"
#include "dpdk/mbuf.hh"
#include "nic/nic.hh"
#include "sim/types.hh"
#include "trace/tracer.hh"

namespace ckpt
{
class Serializer;
class Deserializer;
}

namespace dpdk
{

/** PMD tuning. */
struct PmdConfig
{
    /** RX burst size (DPDK default 32). */
    std::uint32_t burst = 32;

    /** MMIO doorbell cost for the tail update, ns. */
    double tailUpdateNs = 30.0;
};

/** Result of one poll. */
struct PollResult
{
    std::vector<std::uint32_t> mbufs; ///< completed mbuf indices
    sim::Tick latency = 0;            ///< CPU time the poll consumed
};

/**
 * The polling-mode RX queue bound to one core and one NIC port.
 */
class RxQueue
{
  public:
    /**
     * @param queueIdx RX queue of @p port this PMD polls (multi-queue
     *                 ports pair one RxQueue per ring; default 0 is
     *                 the legacy single-ring binding).
     */
    RxQueue(cpu::Core &core, nic::Nic &port, Mempool &pool,
            const PmdConfig &config = {}, std::uint32_t queueIdx = 0);

    /**
     * Arm every descriptor with a fresh buffer (driver start-up).
     * Performed outside simulated time.
     */
    void initialArm();

    /**
     * Check the ring for completed descriptors and consume up to a
     * burst of them.
     */
    PollResult pollBurst();

    /**
     * Re-arm consumed descriptors with fresh buffers and ring the
     * tail doorbell. @return CPU latency.
     */
    sim::Tick refill();

    Mempool &mempool() { return pool; }
    nic::Nic &port() { return nicPort; }

    /** RX queue index this PMD is bound to. */
    std::uint32_t queueIndex() const { return qIdx; }

    /** Descriptors waiting to be re-armed. */
    std::uint32_t pendingRefill() const { return toRefill; }

    /**
     * @{ Split-link mode. The ring lives in the NIC's timing domain,
     * so the PMD cannot touch its software cursors directly. Instead
     * it keeps a local mirror of completed descriptors, fed by
     * DescReady messages from the NIC (onDescReady), and sends its
     * consume/re-arm cursor updates back over the PCIe link through
     * the two hooks. Descriptor and mbuf cacheline charges stay
     * identical to the legacy path; only the cursor bookkeeping moves
     * onto the link.
     */
    void
    enableSplitMode(
        std::function<void(std::uint32_t descIdx)> consume,
        std::function<void(std::uint32_t descIdx, sim::Addr bufAddr,
                           std::uint32_t mbufIdx)>
            arm)
    {
        splitOn = true;
        sendConsume = std::move(consume);
        sendArm = std::move(arm);
    }

    /** A DescReady message landed: mirror one completed descriptor. */
    void
    onDescReady(std::uint32_t descIdx, std::uint32_t mbufIdx,
                const net::Packet &pkt)
    {
        mirror.push_back(MirrorSlot{descIdx, mbufIdx, pkt});
    }
    /** @} */

    /**
     * @{ Checkpoint the driver cursors (embedded in the owning NF's
     * section; the queue is not a SimObject).
     */
    void serialize(ckpt::Serializer &s) const;
    void unserialize(ckpt::Deserializer &d);
    /** @} */

  private:
    /** Completed descriptor mirrored from a DescReady message. */
    struct MirrorSlot
    {
        std::uint32_t descIdx = 0;
        std::uint32_t mbufIdx = 0;
        net::Packet pkt;
    };

    cpu::Core &core;
    nic::Nic &nicPort;
    Mempool &pool;
    PmdConfig cfg;
    std::uint32_t qIdx;
    trace::Source trc;
    std::uint32_t armNext = 0; ///< next ring index to re-arm
    std::uint32_t toRefill = 0;
    sim::Tick tailUpdateCost;

    /** @{ Split-link state (serialized only when splitOn). */
    bool splitOn = false;
    std::function<void(std::uint32_t)> sendConsume;
    std::function<void(std::uint32_t, sim::Addr, std::uint32_t)>
        sendArm;
    std::deque<MirrorSlot> mirror;
    std::uint32_t mirrorHead = 0; ///< next descriptor due to complete
    /** @} */
};

} // namespace dpdk

#endif // IDIO_DPDK_RX_QUEUE_HH
