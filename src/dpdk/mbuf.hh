/**
 * @file
 * Packet buffers and buffer pools, DPDK style.
 *
 * Each Mbuf pairs a 128-byte metadata record (the rte_mbuf struct the
 * PMD writes on every receive) with a 2 KB data buffer (the MTU-sized
 * DMA target the paper describes in Sec. IV-A). Both live at real
 * simulated physical addresses so driver accesses to them flow through
 * the cache hierarchy.
 *
 * The default FIFO recycling order matches a ring-backed
 * rte_mempool; a per-lcore-cache-style LIFO order is available for
 * ablation. (Measurement note: because every armed RX descriptor
 * parks a buffer until the NIC wraps around to it, the I/O working
 * set equals the ring size under either order — see
 * bench/ablation_recycling.)
 */

#ifndef IDIO_DPDK_MBUF_HH
#define IDIO_DPDK_MBUF_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mem/phys_alloc.hh"
#include "net/packet.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace ckpt
{
class Serializer;
class Deserializer;
}

namespace dpdk
{

/** Metadata footprint of one mbuf (two cachelines, like rte_mbuf). */
constexpr std::uint32_t mbufMetaBytes = 128;

/** Default data-buffer size (MTU frame rounded up, paper Sec. IV-A). */
constexpr std::uint32_t defaultBufBytes = 2048;

/** Sentinel for "no mbuf". */
constexpr std::uint32_t invalidMbuf = ~std::uint32_t(0);

/** Free-list recycling order. */
enum class RecycleOrder
{
    Fifo, ///< rte_ring-backed pool: cycle through every buffer
    Lifo, ///< per-lcore cache: reuse the most recently freed buffer
};

/**
 * One packet buffer.
 */
struct Mbuf
{
    std::uint32_t idx = invalidMbuf;
    sim::Addr metaAddr = 0; ///< rte_mbuf struct location
    sim::Addr dataAddr = 0; ///< DMA buffer location
    std::uint32_t bufBytes = 0;
    std::uint32_t pktBytes = 0; ///< received frame length
    net::Packet pkt;            ///< packet identity + timestamps
};

/**
 * Fixed-size pool of mbufs with LIFO recycling.
 */
class Mempool
{
  public:
    /**
     * @param alloc Simulated physical allocator.
     * @param count Number of mbufs.
     * @param bufBytes Data-buffer bytes per mbuf.
     * @param invalidatable Allocate data buffers on Invalidatable
     *        pages (required for the self-invalidate instruction).
     */
    Mempool(mem::PhysAllocator &alloc, std::uint32_t count,
            std::uint32_t bufBytes = defaultBufBytes,
            bool invalidatable = true,
            RecycleOrder order = RecycleOrder::Fifo);

    /** Number of mbufs in the pool. */
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(bufs.size());
    }

    /** Mbufs currently available. */
    std::uint32_t available() const
    {
        return static_cast<std::uint32_t>(freeList.size());
    }

    /** Access an mbuf by index. */
    Mbuf &at(std::uint32_t idx) { return bufs[idx]; }
    const Mbuf &at(std::uint32_t idx) const { return bufs[idx]; }

    /**
     * Take an mbuf off the free list.
     * @return invalidMbuf when the pool is exhausted.
     */
    std::uint32_t alloc();

    /** Return an mbuf to the free list. */
    void free(std::uint32_t idx);

    /**
     * Address of the free-list slot the next alloc/free touches; the
     * driver charges one cacheline access against it per operation.
     */
    sim::Addr freeListSlotAddr() const;

    /** @{ Simple counters (no StatGroup: pools are passive). */
    std::uint64_t allocCount = 0;
    std::uint64_t freeCount = 0;
    std::uint64_t allocFailures = 0;
    /** @} */

    /**
     * @{ Checkpoint the pool's dynamic state (free list, in-use map,
     * per-buffer packet identity). The pool is not a SimObject; the
     * owning network function embeds this in its own section.
     */
    void serialize(ckpt::Serializer &s) const;
    void unserialize(ckpt::Deserializer &d);
    /** @} */

  private:
    std::vector<Mbuf> bufs;
    std::deque<std::uint32_t> freeList;
    std::vector<bool> inUse;
    sim::Addr freeListBase = 0;
    RecycleOrder order;
};

} // namespace dpdk

#endif // IDIO_DPDK_MBUF_HH
