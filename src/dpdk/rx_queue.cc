/**
 * @file
 * RxQueue implementation.
 */

#include "rx_queue.hh"

#include "ckpt/serializer.hh"

namespace dpdk
{

RxQueue::RxQueue(cpu::Core &core, nic::Nic &port, Mempool &pool,
                 const PmdConfig &config, std::uint32_t queueIdx)
    : core(core), nicPort(port), pool(pool), cfg(config),
      qIdx(queueIdx),
      // Queue 0 keeps the legacy source name so single-queue traces
      // stay byte-identical; higher queues get a .q<N> suffix.
      trc(port.tracer().registerSource(
          queueIdx == 0
              ? port.name() + ".pmd"
              : port.name() + ".pmd.q" + std::to_string(queueIdx))),
      tailUpdateCost(sim::nsToTicks(config.tailUpdateNs))
{
}

void
RxQueue::initialArm()
{
    nic::RxRing &ring = nicPort.rxRing(qIdx);
    for (std::uint32_t i = 0; i < ring.size(); ++i) {
        const std::uint32_t idx = pool.alloc();
        if (idx == invalidMbuf)
            sim::fatal("mempool too small to arm the RX ring");
        ring.swArm(i, pool.at(idx).dataAddr, idx);
    }
    armNext = 0;
}

PollResult
RxQueue::pollBurst()
{
    nic::RxRing &ring = nicPort.rxRing(qIdx);
    PollResult res;

    if (splitOn) {
        // The ring's cursors belong to the NIC domain; poll against
        // the local mirror instead. descAddr() is constant geometry,
        // so the descriptor-line charges stay safe (and identical to
        // the legacy path).
        if (mirror.empty()) {
            res.latency = core.read(ring.descAddr(mirrorHead), 1);
            return res;
        }
        IDIO_TRACE_COUNTER(trc, trace::EventKind::DpdkRingBacklog,
                           core.now(), mirror.size(), 0);
        while (res.mbufs.size() < cfg.burst && !mirror.empty()) {
            const MirrorSlot slot = mirror.front();
            mirror.pop_front();
            res.latency += core.read(ring.descAddr(slot.descIdx),
                                     nic::rxDescBytes);
            Mbuf &m = pool.at(slot.mbufIdx);
            m.pktBytes = slot.pkt.frameBytes;
            m.pkt = slot.pkt;
            res.latency += core.write(m.metaAddr, mbufMetaBytes);
            res.mbufs.push_back(slot.mbufIdx);
            mirrorHead = (slot.descIdx + 1) % ring.size();
            sendConsume(slot.descIdx);
            ++toRefill;
        }
        return res;
    }

    if (!ring.swReady()) {
        // Empty poll: the PMD still reads the head descriptor's first
        // cacheline to check DD.
        res.latency = core.read(ring.descAddr(ring.swHead()), 1);
        return res;
    }

    // Sampled only on non-empty polls so idle polling cannot flood
    // the ring with identical zero samples.
    IDIO_TRACE_COUNTER(trc, trace::EventKind::DpdkRingBacklog,
                       core.now(), ring.backlog(), 0);

    while (res.mbufs.size() < cfg.burst && ring.swReady()) {
        const std::uint32_t descIdx = ring.swConsume();
        const nic::RxSlot &slot = ring.slot(descIdx);

        // Parse the full descriptor and fill in the mbuf metadata.
        res.latency += core.read(ring.descAddr(descIdx),
                                 nic::rxDescBytes);
        Mbuf &m = pool.at(slot.mbufIdx);
        m.pktBytes = slot.pkt.frameBytes;
        m.pkt = slot.pkt;
        res.latency += core.write(m.metaAddr, mbufMetaBytes);

        res.mbufs.push_back(slot.mbufIdx);
        ++toRefill;
    }
    return res;
}

sim::Tick
RxQueue::refill()
{
    nic::RxRing &ring = nicPort.rxRing(qIdx);
    sim::Tick lat = 0;
    bool armedAny = false;

    while (toRefill > 0) {
        const std::uint32_t idx = pool.alloc();
        if (idx == invalidMbuf)
            break; // buffers still in flight; retry next batch
        lat += core.read(pool.freeListSlotAddr(), 1);
        IDIO_TRACE_INSTANT(trc, trace::EventKind::DpdkAlloc,
                           core.now(), 0, 0, idx);
        if (splitOn) {
            // The arm carries its ring index explicitly, so the NIC
            // side applies it without a cursor of its own.
            sendArm(armNext, pool.at(idx).dataAddr, idx);
        } else {
            ring.swArm(armNext, pool.at(idx).dataAddr, idx);
        }
        lat += core.write(ring.descAddr(armNext), nic::rxDescBytes);
        armNext = (armNext + 1) % ring.size();
        --toRefill;
        armedAny = true;
    }

    if (armedAny)
        lat += tailUpdateCost; // posted MMIO tail write
    return lat;
}

void
RxQueue::serialize(ckpt::Serializer &s) const
{
    s.writeU32(armNext);
    s.writeU32(toRefill);
    // Split mirror state only exists in split mode, keeping legacy
    // checkpoint bytes unchanged.
    if (splitOn) {
        s.writeU32(mirrorHead);
        s.writeU64(mirror.size());
        for (const MirrorSlot &m : mirror) {
            s.writeU32(m.descIdx);
            s.writeU32(m.mbufIdx);
            net::serializePacket(s, m.pkt);
        }
    }
}

void
RxQueue::unserialize(ckpt::Deserializer &d)
{
    armNext = d.readU32();
    toRefill = d.readU32();
    if (splitOn) {
        mirrorHead = d.readU32();
        mirror.clear();
        const std::uint64_t n = d.readU64();
        for (std::uint64_t i = 0; i < n; ++i) {
            MirrorSlot m;
            m.descIdx = d.readU32();
            m.mbufIdx = d.readU32();
            m.pkt = net::unserializePacket(d);
            mirror.push_back(m);
        }
    }
}

} // namespace dpdk
