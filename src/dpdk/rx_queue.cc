/**
 * @file
 * RxQueue implementation.
 */

#include "rx_queue.hh"

#include "ckpt/serializer.hh"

namespace dpdk
{

RxQueue::RxQueue(cpu::Core &core, nic::Nic &port, Mempool &pool,
                 const PmdConfig &config, std::uint32_t queueIdx)
    : core(core), nicPort(port), pool(pool), cfg(config),
      qIdx(queueIdx),
      // Queue 0 keeps the legacy source name so single-queue traces
      // stay byte-identical; higher queues get a .q<N> suffix.
      trc(port.tracer().registerSource(
          queueIdx == 0
              ? port.name() + ".pmd"
              : port.name() + ".pmd.q" + std::to_string(queueIdx))),
      tailUpdateCost(sim::nsToTicks(config.tailUpdateNs))
{
}

void
RxQueue::initialArm()
{
    nic::RxRing &ring = nicPort.rxRing(qIdx);
    for (std::uint32_t i = 0; i < ring.size(); ++i) {
        const std::uint32_t idx = pool.alloc();
        if (idx == invalidMbuf)
            sim::fatal("mempool too small to arm the RX ring");
        ring.swArm(i, pool.at(idx).dataAddr, idx);
    }
    armNext = 0;
}

PollResult
RxQueue::pollBurst()
{
    nic::RxRing &ring = nicPort.rxRing(qIdx);
    PollResult res;

    if (!ring.swReady()) {
        // Empty poll: the PMD still reads the head descriptor's first
        // cacheline to check DD.
        res.latency = core.read(ring.descAddr(ring.swHead()), 1);
        return res;
    }

    // Sampled only on non-empty polls so idle polling cannot flood
    // the ring with identical zero samples.
    IDIO_TRACE_COUNTER(trc, trace::EventKind::DpdkRingBacklog,
                       core.now(), ring.backlog(), 0);

    while (res.mbufs.size() < cfg.burst && ring.swReady()) {
        const std::uint32_t descIdx = ring.swConsume();
        const nic::RxSlot &slot = ring.slot(descIdx);

        // Parse the full descriptor and fill in the mbuf metadata.
        res.latency += core.read(ring.descAddr(descIdx),
                                 nic::rxDescBytes);
        Mbuf &m = pool.at(slot.mbufIdx);
        m.pktBytes = slot.pkt.frameBytes;
        m.pkt = slot.pkt;
        res.latency += core.write(m.metaAddr, mbufMetaBytes);

        res.mbufs.push_back(slot.mbufIdx);
        ++toRefill;
    }
    return res;
}

sim::Tick
RxQueue::refill()
{
    nic::RxRing &ring = nicPort.rxRing(qIdx);
    sim::Tick lat = 0;
    bool armedAny = false;

    while (toRefill > 0) {
        const std::uint32_t idx = pool.alloc();
        if (idx == invalidMbuf)
            break; // buffers still in flight; retry next batch
        lat += core.read(pool.freeListSlotAddr(), 1);
        IDIO_TRACE_INSTANT(trc, trace::EventKind::DpdkAlloc,
                           core.now(), 0, 0, idx);
        ring.swArm(armNext, pool.at(idx).dataAddr, idx);
        lat += core.write(ring.descAddr(armNext), nic::rxDescBytes);
        armNext = (armNext + 1) % ring.size();
        --toRefill;
        armedAny = true;
    }

    if (armedAny)
        lat += tailUpdateCost; // posted MMIO tail write
    return lat;
}

void
RxQueue::serialize(ckpt::Serializer &s) const
{
    s.writeU32(armNext);
    s.writeU32(toRefill);
}

void
RxQueue::unserialize(ckpt::Deserializer &d)
{
    armNext = d.readU32();
    toRefill = d.readU32();
}

} // namespace dpdk
