/**
 * @file
 * Mempool implementation.
 */

#include "mbuf.hh"

namespace dpdk
{

Mempool::Mempool(mem::PhysAllocator &alloc, std::uint32_t count,
                 std::uint32_t bufBytes, bool invalidatable,
                 RecycleOrder order)
    : order(order)
{
    SIM_ASSERT(count > 0, "empty mempool");
    bufs.resize(count);
    inUse.assign(count, false);

    // Metadata records are packed together (like an rte_mempool's
    // object headers); data buffers are a separate contiguous arena.
    const sim::Addr metaBase = alloc.allocate(
        std::uint64_t(count) * mbufMetaBytes, mem::lineSize);
    const sim::Addr dataBase =
        invalidatable
            ? alloc.allocateInvalidatable(std::uint64_t(count) *
                                          bufBytes)
            : alloc.allocate(std::uint64_t(count) * bufBytes,
                             mem::pageSize);
    freeListBase =
        alloc.allocate(std::uint64_t(count) * 8, mem::lineSize);

    for (std::uint32_t i = 0; i < count; ++i) {
        Mbuf &m = bufs[i];
        m.idx = i;
        m.metaAddr = metaBase + std::uint64_t(i) * mbufMetaBytes;
        m.dataAddr = dataBase + std::uint64_t(i) * bufBytes;
        m.bufBytes = bufBytes;
    }
    // Index 0 is handed out first under either recycling order.
    if (order == RecycleOrder::Lifo) {
        for (std::uint32_t i = count; i-- > 0;)
            freeList.push_back(i);
    } else {
        for (std::uint32_t i = 0; i < count; ++i)
            freeList.push_back(i);
    }
}

std::uint32_t
Mempool::alloc()
{
    if (freeList.empty()) {
        ++allocFailures;
        return invalidMbuf;
    }
    std::uint32_t idx;
    if (order == RecycleOrder::Lifo) {
        idx = freeList.back();
        freeList.pop_back();
    } else {
        idx = freeList.front();
        freeList.pop_front();
    }
    inUse[idx] = true;
    ++allocCount;
    return idx;
}

void
Mempool::free(std::uint32_t idx)
{
    SIM_ASSERT(idx < bufs.size(), "freeing an invalid mbuf index");
    SIM_ASSERT(inUse[idx], "double free of an mbuf");
    inUse[idx] = false;
    freeList.push_back(idx);
    ++freeCount;
}

sim::Addr
Mempool::freeListSlotAddr() const
{
    const std::size_t pos = freeList.size();
    return freeListBase + std::uint64_t(pos) * 8;
}

} // namespace dpdk
