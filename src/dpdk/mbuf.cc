/**
 * @file
 * Mempool implementation.
 */

#include "mbuf.hh"

#include "ckpt/serializer.hh"

namespace dpdk
{

Mempool::Mempool(mem::PhysAllocator &alloc, std::uint32_t count,
                 std::uint32_t bufBytes, bool invalidatable,
                 RecycleOrder order)
    : order(order)
{
    SIM_ASSERT(count > 0, "empty mempool");
    bufs.resize(count);
    inUse.assign(count, false);

    // Metadata records are packed together (like an rte_mempool's
    // object headers); data buffers are a separate contiguous arena.
    const sim::Addr metaBase = alloc.allocate(
        std::uint64_t(count) * mbufMetaBytes, mem::lineSize);
    const sim::Addr dataBase =
        invalidatable
            ? alloc.allocateInvalidatable(std::uint64_t(count) *
                                          bufBytes)
            : alloc.allocate(std::uint64_t(count) * bufBytes,
                             mem::pageSize);
    freeListBase =
        alloc.allocate(std::uint64_t(count) * 8, mem::lineSize);

    for (std::uint32_t i = 0; i < count; ++i) {
        Mbuf &m = bufs[i];
        m.idx = i;
        m.metaAddr = metaBase + std::uint64_t(i) * mbufMetaBytes;
        m.dataAddr = dataBase + std::uint64_t(i) * bufBytes;
        m.bufBytes = bufBytes;
    }
    // Index 0 is handed out first under either recycling order.
    if (order == RecycleOrder::Lifo) {
        for (std::uint32_t i = count; i-- > 0;)
            freeList.push_back(i);
    } else {
        for (std::uint32_t i = 0; i < count; ++i)
            freeList.push_back(i);
    }
}

std::uint32_t
Mempool::alloc()
{
    if (freeList.empty()) {
        ++allocFailures;
        return invalidMbuf;
    }
    std::uint32_t idx;
    if (order == RecycleOrder::Lifo) {
        idx = freeList.back();
        freeList.pop_back();
    } else {
        idx = freeList.front();
        freeList.pop_front();
    }
    inUse[idx] = true;
    ++allocCount;
    return idx;
}

void
Mempool::free(std::uint32_t idx)
{
    SIM_ASSERT(idx < bufs.size(), "freeing an invalid mbuf index");
    SIM_ASSERT(inUse[idx], "double free of an mbuf");
    inUse[idx] = false;
    freeList.push_back(idx);
    ++freeCount;
}

sim::Addr
Mempool::freeListSlotAddr() const
{
    const std::size_t pos = freeList.size();
    return freeListBase + std::uint64_t(pos) * 8;
}

void
Mempool::serialize(ckpt::Serializer &s) const
{
    s.writeU32(capacity());
    s.writeU64(freeList.size());
    for (const std::uint32_t idx : freeList)
        s.writeU32(idx);
    s.writeBoolVec(inUse);
    for (const Mbuf &m : bufs) {
        s.writeU32(m.pktBytes);
        net::serializePacket(s, m.pkt);
    }
    s.writeU64(allocCount);
    s.writeU64(freeCount);
    s.writeU64(allocFailures);
}

void
Mempool::unserialize(ckpt::Deserializer &d)
{
    const std::uint32_t count = d.readU32();
    if (count != capacity())
        sim::fatal("ckpt: mempool size mismatch (checkpoint %u, "
                   "config %u)",
                   count, capacity());
    freeList.clear();
    const std::uint64_t nFree = d.readU64();
    for (std::uint64_t i = 0; i < nFree; ++i)
        freeList.push_back(d.readU32());
    inUse = d.readBoolVec();
    if (inUse.size() != bufs.size())
        sim::fatal("ckpt: mempool in-use map size mismatch");
    for (Mbuf &m : bufs) {
        m.pktBytes = d.readU32();
        m.pkt = net::unserializePacket(d);
    }
    allocCount = d.readU64();
    freeCount = d.readU64();
    allocFailures = d.readU64();
}

} // namespace dpdk
