/**
 * @file
 * Quickstart: build a two-core TouchDrop server, hit it with one
 * 25 Gbps burst per 10 ms, and compare the DDIO baseline against IDIO.
 *
 * This is the smallest end-to-end use of the public API:
 *   1. fill an ExperimentConfig (paper Table I defaults),
 *   2. pick a policy preset,
 *   3. build a TestSystem, start it, run simulated time,
 *   4. read the transaction totals and per-packet latency.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "ckpt/checkpoint.hh"
#include "harness/system.hh"
#include "harness/trace_artifacts.hh"
#include "stats/table.hh"

namespace
{

struct RunResult
{
    harness::Totals totals;
    std::uint64_t p50;
    std::uint64_t p99;
};

/**
 * Run three burst periods under @p policy. With a checkpoint path the
 * run saves its state to that file at the 10 ms mark and continues;
 * with a restore path it starts from the saved state instead of cold.
 * Either way the totals printed at 30 ms are bit-identical to an
 * uninterrupted run.
 */
RunResult
runPolicy(idio::Policy policy, const std::string &checkpointPath = {},
          const std::string &restorePath = {})
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    cfg.applyPolicy(policy);

    harness::TestSystem system(cfg);
    system.start();

    const sim::Tick duration = 30 * sim::oneMs; // three burst periods
    if (!restorePath.empty()) {
        ckpt::restoreFromFile(restorePath, system.simulation());
        if (system.simulation().now() < duration)
            system.runFor(duration - system.simulation().now());
    } else if (!checkpointPath.empty()) {
        system.runFor(10 * sim::oneMs);
        ckpt::saveToFile(checkpointPath, system.simulation());
        system.runFor(duration - system.simulation().now());
    } else {
        system.runFor(duration);
    }

    RunResult r;
    r.totals = system.totals();
    r.p50 = system.nf(0).latency.p50();
    r.p99 = system.nf(0).latency.p99();
    return r;
}

/**
 * Record a packet-lifecycle event trace of a small IDIO burst (one
 * 256-packet burst per NIC, so every event fits in the rings without
 * wraparound and the trace cross-checks exactly against the totals
 * sidecar).
 */
void
tracedRun(const std::string &tracePath)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    cfg.burstPackets = 256;
    cfg.applyPolicy(idio::Policy::Idio);

    harness::TestSystem system(cfg);
    harness::enableTracing(system);
    system.start();
    system.runFor(10 * sim::oneMs); // one burst period
    harness::writeTraceArtifacts(tracePath, system);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // --trace=FILE records a packet-lifecycle event trace of the
    // IDIO run (open FILE in Perfetto / chrome://tracing, or feed it
    // to tools/trace_summary.py). --checkpoint=FILE saves the IDIO
    // run's state at 10 ms (inspect with tools/ckpt_inspect.py);
    // --restore=FILE resumes the IDIO run from such a file and prints
    // the same table an uninterrupted run would.
    std::string tracePath;
    std::string checkpointPath;
    std::string restorePath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0) {
            tracePath = arg.substr(8);
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            checkpointPath = arg.substr(13);
        } else if (arg.rfind("--restore=", 0) == 0) {
            restorePath = arg.substr(10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace=FILE] "
                         "[--checkpoint=FILE] [--restore=FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("IDIO quickstart: 2x TouchDrop, 1024-entry rings, "
                "1514 B packets, 25 Gbps bursts\n\n");

    const RunResult ddio = runPolicy(idio::Policy::Ddio);
    const RunResult idioRun =
        runPolicy(idio::Policy::Idio, checkpointPath, restorePath);
    if (!checkpointPath.empty())
        std::printf("checkpoint written to %s\n\n",
                    checkpointPath.c_str());

    stats::TablePrinter table({"metric", "DDIO", "IDIO", "change"});
    auto row = [&](const char *name, double base, double ours) {
        const double change =
            base > 0 ? (ours - base) / base * 100.0 : 0.0;
        table.addRow({name, stats::TablePrinter::num(base, 0),
                      stats::TablePrinter::num(ours, 0),
                      stats::TablePrinter::num(change, 1) + "%"});
    };

    row("MLC writebacks", double(ddio.totals.mlcWritebacks),
        double(idioRun.totals.mlcWritebacks));
    row("LLC writebacks", double(ddio.totals.llcWritebacks),
        double(idioRun.totals.llcWritebacks));
    row("DRAM reads", double(ddio.totals.dramReads),
        double(idioRun.totals.dramReads));
    row("DRAM writes", double(ddio.totals.dramWrites),
        double(idioRun.totals.dramWrites));
    row("packets processed", double(ddio.totals.processedPackets),
        double(idioRun.totals.processedPackets));
    row("p50 latency (us)", sim::ticksToUs(ddio.p50),
        sim::ticksToUs(idioRun.p50));
    row("p99 latency (us)", sim::ticksToUs(ddio.p99),
        sim::ticksToUs(idioRun.p99));

    table.print(std::cout);
    if (!tracePath.empty()) {
        tracedRun(tracePath);
        std::printf("\ntrace written to %s (+ .totals.json "
                    "sidecar)\n", tracePath.c_str());
    }
    return 0;
}
