/**
 * @file
 * Domain example: RX ring provisioning for bursty tenants.
 *
 * Operators size RX descriptor rings to absorb bursts without drops,
 * but the paper shows large rings are what create MLC/LLC writeback
 * storms under DDIO (Fig. 4: rings above ~692 MTU buffers overflow
 * the 1 MB MLC). This example sweeps the ring size under 25 Gbps
 * bursts and reports drops and tail latency for DDIO and IDIO: with
 * IDIO, the operator can provision large, drop-free rings without
 * paying the writeback/latency tax.
 */

#include <cstdio>
#include <iostream>

#include "harness/system.hh"
#include "stats/table.hh"

namespace
{

struct Point
{
    std::uint64_t drops;
    double p99Us;
    std::uint64_t mlcWb;
    std::uint64_t dramWr;
};

Point
run(idio::Policy policy, std::uint32_t ring)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    cfg.nic.ringSize = ring;
    cfg.burstPackets = 1024; // burst size fixed; ring must absorb it
    cfg.applyPolicy(policy);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(30 * sim::oneMs);

    Point p;
    p.drops = sys.totals().rxDrops;
    p.p99Us = sim::ticksToUs(sys.nf(0).latency.p99());
    p.mlcWb = sys.totals().mlcWritebacks;
    p.dramWr = sys.totals().dramWrites;
    return p;
}

} // anonymous namespace

int
main()
{
    std::printf("RX ring provisioning under 25 Gbps bursts of 1024 "
                "packets (2x TouchDrop):\n\n");

    stats::TablePrinter t({"ring", "config", "drops", "p99 us",
                           "mlcWB", "dramWr"});
    for (std::uint32_t ring : {256u, 512u, 1024u, 2048u}) {
        for (auto policy : {idio::Policy::Ddio, idio::Policy::Idio}) {
            const Point p = run(policy, ring);
            t.addRow({std::to_string(ring), idio::policyName(policy),
                      std::to_string(p.drops),
                      stats::TablePrinter::num(p.p99Us, 1),
                      std::to_string(p.mlcWb),
                      std::to_string(p.dramWr)});
        }
    }
    t.print(std::cout);

    std::printf("\nReading: small rings drop burst tails under both "
                "policies; large rings absorb the burst but under "
                "DDIO pay for it in writeback traffic and p99. IDIO "
                "decouples ring size from the writeback tax.\n");
    return 0;
}
