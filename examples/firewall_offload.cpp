/**
 * @file
 * Domain example: a DoS-detection firewall with payload offload.
 *
 * The paper motivates application class 1 with exactly this scenario
 * (Sec. V-A): a firewall that makes drop/pass decisions from headers
 * and rarely inspects payloads. Keeping those payloads out of the LLC
 * protects co-running, cache-sensitive tenants.
 *
 * This example builds two systems:
 *   - baseline: DDIO places every inbound line in the LLC;
 *   - IDIO: senders mark firewall traffic DSCP 40 (class 1), so
 *     payloads take the selective direct-DRAM path while headers stay
 *     on the fast DCA path.
 * Both co-run an LLC-sensitive analytics stand-in (LLCAntagonist) and
 * we report the firewall's packet latency, the analytics app's memory
 * performance, and the DRAM/LLC traffic breakdown.
 */

#include <cstdio>
#include <iostream>

#include "harness/system.hh"
#include "stats/table.hh"

namespace
{

struct Result
{
    double fwP99Us;
    double analyticsTpaNs; // mean ns per analytics access
    std::uint64_t llcWritebacks;
    std::uint64_t dramWrites;
    std::uint64_t headerPrefetches;
    std::uint64_t payloadBypasses;
};

Result
run(idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::L2FwdDropPayload; // the firewall
    cfg.traffic = harness::TrafficKind::Poisson;
    cfg.rateGbps = 8.0;
    cfg.withAntagonist = true; // the analytics tenant
    cfg.antagonist.bufferBytes = 6ull << 20;
    cfg.applyPolicy(policy);

    harness::TestSystem sys(cfg);
    sys.start();
    sys.runFor(20 * sim::oneMs);

    Result r;
    r.fwP99Us = sim::ticksToUs(sys.nf(0).latency.p99());
    r.analyticsTpaNs =
        sys.antagonist()->ticksPerAccess() / double(sim::oneNs);
    r.llcWritebacks = sys.totals().llcWritebacks;
    r.dramWrites = sys.totals().dramWrites;
    r.headerPrefetches = sys.controller().headerHints.get();
    r.payloadBypasses = sys.controller().directDramSteers.get();
    return r;
}

} // anonymous namespace

int
main()
{
    std::printf("Firewall payload offload: 2x header-only DoS "
                "firewall (class 1) + cache-sensitive analytics "
                "tenant, 8 Gbps Poisson per port\n\n");

    const Result ddio = run(idio::Policy::Ddio);
    const Result idioR = run(idio::Policy::Idio);

    stats::TablePrinter t({"metric", "DDIO", "IDIO"});
    t.addRow({"firewall p99 (us)",
              stats::TablePrinter::num(ddio.fwP99Us, 1),
              stats::TablePrinter::num(idioR.fwP99Us, 1)});
    t.addRow({"analytics ns/access",
              stats::TablePrinter::num(ddio.analyticsTpaNs, 2),
              stats::TablePrinter::num(idioR.analyticsTpaNs, 2)});
    t.addRow({"LLC writebacks", std::to_string(ddio.llcWritebacks),
              std::to_string(idioR.llcWritebacks)});
    t.addRow({"DRAM writes", std::to_string(ddio.dramWrites),
              std::to_string(idioR.dramWrites)});
    t.addRow({"header prefetches", std::to_string(ddio.headerPrefetches),
              std::to_string(idioR.headerPrefetches)});
    t.addRow({"payload DRAM bypasses",
              std::to_string(ddio.payloadBypasses),
              std::to_string(idioR.payloadBypasses)});
    t.print(std::cout);

    std::printf("\nUnder IDIO the payloads never enter the LLC "
                "(bypasses > 0, LLC writebacks collapse), the "
                "analytics tenant's memory latency improves, and the "
                "firewall keeps its fast header path.\n");
    return 0;
}
