/**
 * @file
 * Domain example: record a workload to pcap, then A/B-test policies
 * against the identical trace.
 *
 * Production tuning rarely happens against synthetic generators: you
 * capture real traffic and replay it against candidate configurations.
 * This example does exactly that inside the simulator:
 *
 *   1. run a mixed Poisson workload and record every packet arriving
 *      at the NIC into a standard pcap file (openable with wireshark),
 *   2. replay the *identical* capture through a DDIO system and an
 *      IDIO system via gen::TraceTrafficGen,
 *   3. compare writebacks, DRAM traffic and tail latency with the
 *      arrival process held perfectly constant.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "gen/traffic.hh"
#include "harness/system.hh"
#include "net/pcap.hh"
#include "stats/table.hh"

namespace
{

const char *pcapPath = "/tmp/idio_trace_replay.pcap";

/** Phase 1: synthesise and capture. */
std::vector<net::TraceRecord>
capture()
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.traffic = harness::TrafficKind::Poisson;
    cfg.rateGbps = 9.0;
    cfg.applyPolicy(idio::Policy::Ddio);

    harness::TestSystem sys(cfg);
    net::PcapWriter writer(pcapPath);
    sys.nicPort(0).setRxTap(
        [&writer](sim::Tick when, const net::Packet &pkt) {
            writer.record(when, pkt);
        });
    sys.start();
    sys.runFor(10 * sim::oneMs);
    writer.close();

    auto trace = net::PcapReader::readAll(pcapPath);
    std::printf("captured %zu packets to %s\n\n", trace.size(),
                pcapPath);
    return trace;
}

struct Result
{
    std::uint64_t mlcWb;
    std::uint64_t dramWr;
    double p99Us;
    std::uint64_t processed;
};

/** Phase 2: replay against a policy. */
Result
replay(const std::vector<net::TraceRecord> &trace, idio::Policy policy)
{
    harness::ExperimentConfig cfg;
    cfg.numNfs = 1;
    cfg.traffic = harness::TrafficKind::None; // we drive the NIC
    cfg.applyPolicy(policy);

    harness::TestSystem sys(cfg);
    gen::TraceTrafficGen gen(sys.simulation(), "system.traceGen",
                             sys.nicPort(0), trace);
    sys.start();
    gen.start();
    sys.runFor(15 * sim::oneMs);

    Result r;
    r.mlcWb = sys.totals().mlcWritebacks;
    r.dramWr = sys.totals().dramWrites;
    r.p99Us = sim::ticksToUs(sys.nf(0).latency.p99());
    r.processed = sys.totals().processedPackets;
    return r;
}

} // anonymous namespace

int
main()
{
    std::printf("Trace-driven A/B test: capture once, replay under "
                "DDIO and IDIO\n\n");

    const auto trace = capture();
    const Result ddio = replay(trace, idio::Policy::Ddio);
    const Result idioR = replay(trace, idio::Policy::Idio);

    stats::TablePrinter t({"metric", "DDIO", "IDIO"});
    t.addRow({"packets processed", std::to_string(ddio.processed),
              std::to_string(idioR.processed)});
    t.addRow({"MLC writebacks", std::to_string(ddio.mlcWb),
              std::to_string(idioR.mlcWb)});
    t.addRow({"DRAM writes", std::to_string(ddio.dramWr),
              std::to_string(idioR.dramWr)});
    t.addRow({"p99 (us)", stats::TablePrinter::num(ddio.p99Us, 1),
              stats::TablePrinter::num(idioR.p99Us, 1)});
    t.print(std::cout);

    std::printf("\nBoth columns saw byte-identical arrivals (the "
                "replayed capture), so every delta is attributable "
                "to the policy.\n");
    std::remove(pcapPath);
    return 0;
}
