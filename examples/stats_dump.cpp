/**
 * @file
 * Run one configurable experiment and dump every statistic in the
 * registry — the "perf stat" of the simulator. Useful for exploring
 * where transactions go under different policies.
 *
 * Usage: stats_dump [policy] [rateGbps] [ring] [durationMs] [traffic]
 *                   [--json]
 *   policy:   ddio | invalidate | prefetch | static | idio  (default idio)
 *   traffic:  bursty | steady | poisson                     (default bursty)
 *   --json:   emit the registry as JSON instead of text
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <iostream>

#include "harness/system.hh"
#include "stats/json.hh"

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            json = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    harness::ExperimentConfig cfg;
    cfg.numNfs = 2;
    cfg.nfKind = harness::NfKind::TouchDrop;
    cfg.traffic = harness::TrafficKind::Bursty;
    cfg.rateGbps = 25.0;
    double durationMs = 30.0;

    if (argc > 1)
        cfg.applyPolicy(idio::parsePolicy(argv[1]));
    else
        cfg.applyPolicy(idio::Policy::Idio);
    if (argc > 2)
        cfg.rateGbps = std::atof(argv[2]);
    if (argc > 3)
        cfg.nic.ringSize = static_cast<std::uint32_t>(std::atoi(argv[3]));
    if (argc > 4)
        durationMs = std::atof(argv[4]);
    if (argc > 5) {
        const std::string t = argv[5];
        cfg.traffic = t == "steady" ? harness::TrafficKind::Steady
                      : t == "poisson"
                          ? harness::TrafficKind::Poisson
                          : harness::TrafficKind::Bursty;
    }

    if (!json)
        std::printf("# %s\n", cfg.summary().c_str());

    harness::TestSystem system(cfg);
    system.start();
    system.runFor(static_cast<sim::Tick>(durationMs * sim::oneMs));

    if (json) {
        stats::writeJson(std::cout, system.simulation().statsRegistry());
        std::printf("\n");
        return 0;
    }
    system.simulation().statsRegistry().dump(std::cout);

    const auto t = system.totals();
    std::printf("\n# totals: rx=%llu drops=%llu processed=%llu "
                "mlcWB=%llu llcWB=%llu dramRd=%llu dramWr=%llu\n",
                (unsigned long long)t.rxPackets,
                (unsigned long long)t.rxDrops,
                (unsigned long long)t.processedPackets,
                (unsigned long long)t.mlcWritebacks,
                (unsigned long long)t.llcWritebacks,
                (unsigned long long)t.dramReads,
                (unsigned long long)t.dramWrites);
    std::printf("# nf0 latency: p50=%.1fus p99=%.1fus n=%zu\n",
                sim::ticksToUs(system.nf(0).latency.p50()),
                sim::ticksToUs(system.nf(0).latency.p99()),
                system.nf(0).latency.count());
    return 0;
}
