#!/usr/bin/env python3
"""Inspect an IDIO simulator checkpoint file.

Parses the sectioned binary format written by ckpt::save() (see
src/ckpt/serializer.hh for the layout), prints the header and one row
per section (name, schema version, payload size, checksum), and
validates the whole file: magic, format version, section bounds,
FNV-1a checksums, duplicate names and trailing bytes.

Exit status: 0 when the checkpoint is well-formed, 1 on any
corruption, 2 on usage errors.

Usage:
    tools/ckpt_inspect.py FILE.ckpt
"""

import argparse
import struct
import sys

MAGIC = b"IDIOCKPT"
FORMAT_VERSION = 3
BACKEND_NAMES = {0: "wheel", 1: "heap"}

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
FNV_MASK = (1 << 64) - 1


def fnv1a(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & FNV_MASK
    return h


class Corrupt(Exception):
    pass


class Reader:
    def __init__(self, blob: bytes):
        self.blob = blob
        self.pos = 0

    def take(self, n: int, what: str) -> bytes:
        if self.pos + n > len(self.blob):
            raise Corrupt(
                f"truncated: {what} needs {n} bytes at offset "
                f"{self.pos}, only {len(self.blob) - self.pos} left")
        out = self.blob[self.pos:self.pos + n]
        self.pos += n
        return out

    def u32(self, what: str) -> int:
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return struct.unpack("<Q", self.take(8, what))[0]


def inspect(path: str) -> int:
    with open(path, "rb") as fh:
        blob = fh.read()

    r = Reader(blob)
    failures = 0

    magic = r.take(8, "magic")
    if magic != MAGIC:
        print(f"FAIL bad magic {magic!r} (want {MAGIC!r})")
        return 1

    version = r.u32("formatVersion")
    seed = r.u64("seed")
    tick = r.u64("tick")
    count = r.u32("sectionCount")

    print(f"{path}: {len(blob)} bytes")
    print(f"  formatVersion {version}   seed {seed}   "
          f"tick {tick} ({tick / 1e6:.3f} us)   {count} sections")
    if version != FORMAT_VERSION:
        print(f"FAIL formatVersion {version}; this tool understands "
              f"{FORMAT_VERSION}")
        failures += 1

    rows = []
    seen = set()
    for i in range(count):
        name_len = r.u32(f"section {i} nameLen")
        name = r.take(name_len, f"section {i} name").decode(
            "utf-8", errors="replace")
        sec_version = r.u32(f"section '{name}' version")
        payload_len = r.u64(f"section '{name}' payloadLen")
        checksum = r.u64(f"section '{name}' checksum")
        payload = r.take(payload_len, f"section '{name}' payload")

        status = "ok"
        if name in seen:
            status = "DUPLICATE"
            failures += 1
        seen.add(name)
        if fnv1a(payload) != checksum:
            status = "BAD-CHECKSUM"
            failures += 1
        rows.append((name, sec_version, payload_len, checksum, status,
                     payload))

    if r.pos != len(blob):
        print(f"FAIL {len(blob) - r.pos} trailing bytes after the "
              "last section")
        failures += 1

    width = max((len(r[0]) for r in rows), default=4)
    print(f"\n  {'section':<{width}}  {'ver':>3}  {'bytes':>10}  "
          f"{'fnv1a-64':>16}  status")
    for name, ver, size, csum, status, _ in rows:
        print(f"  {name:<{width}}  {ver:>3}  {size:>10}  "
              f"{csum:016x}  {status}")


    for name, ver, _, _, _, payload in rows:
        if name.startswith("_eventq") and ver == 2:
            line = decode_eventq(payload)
            if line:
                print(f"  {name}: {line}")

    if failures:
        print(f"\n{failures} problem(s) found")
        return 1
    print(f"\nall {count} section checksums valid")
    return 0


def decode_eventq(payload: bytes) -> str:
    """Pretty-print a v2 _eventq section (see ckpt saveEventq)."""
    if len(payload) != 1 + 4 + 4 + 8 * 6:
        return "unexpected payload length"
    backend, levels, slot_bits = struct.unpack_from("<BII", payload, 0)
    wheel_base, tick, next_seq, processed, since_hook, pending = \
        struct.unpack_from("<6Q", payload, 9)
    return (f"backend={BACKEND_NAMES.get(backend, backend)} "
            f"wheel={levels}x2^{slot_bits} base={wheel_base} "
            f"tick={tick} nextSeq={next_seq} processed={processed} "
            f"sinceHook={since_hook} pending={pending}")


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("checkpoint", help="checkpoint file "
                    "(from --checkpoint=FILE or ckpt::saveToFile)")
    args = ap.parse_args()
    try:
        return inspect(args.checkpoint)
    except Corrupt as e:
        print(f"FAIL {e}")
        return 1
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        sys.stderr.close()
        return 0
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
