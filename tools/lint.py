#!/usr/bin/env python3
"""Repo-specific lint for the IDIO simulator.

Custom rules (beyond what clang-tidy covers):

  no-assert      ``assert()`` is banned in src/ — it vanishes under
                 NDEBUG and skips the simulator's panic path. Use
                 SIM_ASSERT (sim/logging.hh). Tests/bench may use
                 gtest/raw asserts freely.
  no-naked-new   Naked ``new`` is banned everywhere — ownership must go
                 through std::make_unique/std::make_shared or a
                 documented owner.
  no-stdout      ``std::cout`` is banned in src/ — models must report
                 through sim::inform()/warn() so verbosity filtering
                 and log capture keep working.
  header-guard   Headers use ``IDIO_<DIR>_<FILE>_HH`` guards, with the
                 path relative to the repo root and the leading
                 ``src/`` dropped (e.g. src/cache/llc.hh ->
                 IDIO_CACHE_LLC_HH).

Suppress a rule on one line with a trailing ``// lint: allow(<rule>)``.

Modes:
  tools/lint.py                 run the custom rules
  tools/lint.py --format-check  additionally verify clang-format
                                compliance (skipped with a warning when
                                clang-format is not installed)

Exit status is non-zero when any violation is found.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CXX_DIRS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")
ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_.])assert\s*\(")
NAKED_NEW_RE = re.compile(r"\bnew\b\s*[A-Za-z_:(<]")
STDOUT_RE = re.compile(r"std\s*::\s*cout")


def cxx_files() -> list[pathlib.Path]:
    """All C++ sources, preferring git's view when available."""
    try:
        out = subprocess.run(
            ["git", "ls-files", "--", *CXX_DIRS],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
        files = [REPO_ROOT / line for line in out.splitlines()]
    except (OSError, subprocess.CalledProcessError):
        files = [
            p for d in CXX_DIRS for p in (REPO_ROOT / d).rglob("*")
        ]
    return sorted(
        p for p in files
        if p.suffix in CXX_SUFFIXES and p.is_file()
    )


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, keeping line
    numbers (and the lint-suppression markers) intact."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                # Keep "// lint: allow(...)" visible to the scanner.
                end = text.find("\n", i)
                end = n if end == -1 else end
                comment = text[i:end]
                m = ALLOW_RE.search(comment)
                out.append(m.group(0) if m else "")
                out.append(" " * (end - i - len(out[-1])))
                i = end
                state = "code"
                continue
            if c == "/" and nxt == "*":
                out.append("  ")
                i += 2
                state = "block"
                continue
            if c == '"':
                out.append('"')
                i += 1
                state = "dquote"
                continue
            if c == "'":
                out.append("'")
                i += 1
                state = "squote"
                continue
            out.append(c)
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 2
                state = "code"
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                out.append(quote)
                i += 1
                state = "code"
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


class Violation:
    def __init__(self, path: pathlib.Path, line: int, rule: str,
                 message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def scan_file(path: pathlib.Path) -> list[Violation]:
    rel = path.relative_to(REPO_ROOT)
    in_src = rel.parts[0] == "src"
    text = path.read_text(encoding="utf-8")
    stripped = strip_comments_and_strings(text)

    violations: list[Violation] = []

    def check_line_rule(rule: str, regex: re.Pattern[str],
                        message: str, only_src: bool) -> None:
        if only_src and not in_src:
            return
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            if not regex.search(line):
                continue
            allow = ALLOW_RE.search(line)
            if allow and allow.group(1) == rule:
                continue
            violations.append(Violation(path, lineno, rule, message))

    check_line_rule(
        "no-assert", ASSERT_RE,
        "assert() is banned in src/; use SIM_ASSERT (sim/logging.hh)",
        only_src=True)
    check_line_rule(
        "no-naked-new", NAKED_NEW_RE,
        "naked new; use std::make_unique/std::make_shared",
        only_src=False)
    check_line_rule(
        "no-stdout", STDOUT_RE,
        "std::cout is banned in src/; use sim::inform()",
        only_src=True)

    if path.suffix in (".hh", ".hpp"):
        violations.extend(check_header_guard(path, text))
    return violations


def expected_guard(path: pathlib.Path) -> str:
    rel = path.relative_to(REPO_ROOT)
    parts = rel.parts
    if parts[0] == "src":
        parts = parts[1:]
    stem = [re.sub(r"[^A-Za-z0-9]", "_", p) for p in parts[:-1]]
    stem.append(re.sub(r"[^A-Za-z0-9]", "_", path.stem))
    return "IDIO_" + "_".join(s.upper() for s in stem) + "_HH"


def check_header_guard(path: pathlib.Path,
                       text: str) -> list[Violation]:
    guard = expected_guard(path)
    ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.MULTILINE)
    if not ifndef:
        return [Violation(path, 1, "header-guard",
                          f"missing include guard (expected {guard})")]
    got = ifndef.group(1)
    if got != guard:
        line = text[:ifndef.start()].count("\n") + 1
        return [Violation(path, line, "header-guard",
                          f"guard is {got}, expected {guard}")]
    if not re.search(rf"^#define\s+{re.escape(guard)}\b", text,
                     re.MULTILINE):
        return [Violation(path, 1, "header-guard",
                          f"#ifndef {guard} without matching #define")]
    return []


def run_format_check(files: list[pathlib.Path]) -> int:
    exe = shutil.which("clang-format")
    if not exe:
        print("lint: warning: clang-format not found; "
              "--format-check skipped", file=sys.stderr)
        return 0
    bad = 0
    for chunk_start in range(0, len(files), 50):
        chunk = files[chunk_start:chunk_start + 50]
        proc = subprocess.run(
            [exe, "--dry-run", "-Werror", *map(str, chunk)],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            bad += 1
            sys.stderr.write(proc.stderr)
    if bad:
        print("lint: clang-format check failed "
              "(run clang-format -i on the files above)",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--format-check", action="store_true",
                        help="also verify clang-format compliance")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="restrict linting to these files")
    args = parser.parse_args()

    if args.files:
        missing = [p for p in args.files if not p.is_file()]
        if missing:
            for p in missing:
                print(f"lint: error: no such file: {p}",
                      file=sys.stderr)
            return 2
        files = [p.resolve() for p in args.files
                 if p.suffix in CXX_SUFFIXES]
    else:
        files = cxx_files()

    violations: list[Violation] = []
    for path in files:
        violations.extend(scan_file(path))

    for v in violations:
        print(v)

    status = 1 if violations else 0
    if args.format_check:
        status |= run_format_check(files)

    if status == 0:
        print(f"lint: {len(files)} files clean")
    return status


if __name__ == "__main__":
    sys.exit(main())
