#!/usr/bin/env python3
"""Aggregate an IDIO packet-lifecycle trace into summary tables.

Input is the Chrome trace-event JSON written by ``--trace=FILE``
(benches / examples) or ``trace::writeChromeTrace``. The tool prints

  * a placement-outcome table: how many inbound DMA cachelines went
    down each path (DDIO update / DDIO allocate / MLC prefetch /
    DRAM direct) and how many lines left the hierarchy as dead LLC
    writebacks vs. self-invalidations;
  * lifecycle counts (packets received / dropped / consumed);
  * per-stage latency percentiles derived by correlating events that
    share one packet id (DMA, ring-wait, NF processing, total).

With ``--check-totals SIDECAR`` (the ``FILE.totals.json`` written
alongside every ``--trace`` run) the tool additionally asserts that
every trace-derived count exactly matches the simulator's own
``harness::Totals`` counters and exits non-zero on any mismatch —
the CI trace smoke gate.

With ``--by-tenant`` (tenant-mode traces, e.g. ``bench/tenant_mix
--trace``) the tool also prints per-tenant lifecycle tables and
per-stage latency percentiles, attributing events through the
core->tenant map in the sidecar's ``tenants`` array (``nf.consume``
carries the consuming core; NIC events come from the per-core
``system.nf<i>.nic`` sources). Every attributable per-tenant count is
cross-checked exactly against the sidecar's per-tenant totals; any
mismatch exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import Counter, defaultdict


def percentile(sorted_vals: list[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1,
                      int(round(p / 100.0 * len(sorted_vals))) - 1))
    return sorted_vals[rank]


def load_trace(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def event_counts(trace: dict) -> Counter:
    counts: Counter = Counter()
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") in ("i", "X", "C"):
            counts[ev["name"]] += 1
    return counts


def stage_latencies(trace: dict) -> dict[str, list[float]]:
    """Per-packet stage latencies in microseconds, keyed by stage."""
    # pkt id -> {event name -> (ts, dur)}; keep the first occurrence
    # (ids are unique per packet, names unique per stage).
    per_pkt: dict[int, dict[str, tuple[float, float]]] = \
        defaultdict(dict)
    for ev in trace.get("traceEvents", []):
        pkt = ev.get("args", {}).get("pkt")
        if not pkt:
            continue
        name = ev["name"]
        if name not in per_pkt[pkt]:
            per_pkt[pkt][name] = (float(ev["ts"]),
                                  float(ev.get("dur", 0.0)))

    stages: dict[str, list[float]] = defaultdict(list)
    for events in per_pkt.values():
        if "nic.rx" not in events:
            continue
        rx_ts = events["nic.rx"][0]
        if "nic.dmaPayload" in events:
            ts, dur = events["nic.dmaPayload"]
            stages["dma (rx -> payload landed)"].append(
                ts + dur - rx_ts)
        if "nic.descWb" in events and "nf.consume" in events:
            stages["ring wait (descWb -> consume)"].append(
                events["nf.consume"][0] - events["nic.descWb"][0])
        if "nf.consume" in events:
            ts, dur = events["nf.consume"]
            stages["nf processing (consume span)"].append(dur)
            stages["total (rx -> consumed)"].append(ts + dur - rx_ts)
    return stages


PLACEMENT_ROWS = [
    ("DDIO in-place update", "cache.ddioUpdate"),
    ("DDIO way allocation", "cache.ddioAlloc"),
    ("MLC prefetch fill", "cache.mlcPrefetchFill"),
    ("DRAM direct (M3)", "cache.dramDirect"),
    ("MLC demand fill", "cache.mlcFill"),
    ("MLC eviction (MLC->LLC)", "cache.mlcEvict"),
    ("PCIe invalidation", "cache.pcieInval"),
    ("self-invalidation (M1)", "cache.selfInval"),
    ("dead writeback (LLC->DRAM)", "cache.llcWb"),
]

LIFECYCLE_ROWS = [
    ("packets received", "nic.rx"),
    ("packets dropped (ring full)", "nic.drop"),
    ("classifier decisions", "nic.classify"),
    ("payload DMA spans", "nic.dmaPayload"),
    ("descriptor writebacks", "nic.descWb"),
    ("IDIO header hints", "idio.hintHeader"),
    ("IDIO payload hints", "idio.hintPayload"),
    ("IDIO direct-DRAM steers", "idio.directDram"),
    ("mbuf allocs (re-arm)", "dpdk.alloc"),
    ("mbuf frees", "dpdk.free"),
    ("packets consumed by NF", "nf.consume"),
]

# sidecar field -> trace event name whose count must match exactly
CHECKS = [
    ("rxPackets", "nic.rx"),
    ("rxDrops", "nic.drop"),
    ("processedPackets", "nf.consume"),
    ("mlcWritebacks", "cache.mlcEvict"),
    ("mlcPcieInvals", "cache.pcieInval"),
    ("llcWritebacks", "cache.llcWb"),
    ("ddioUpdates", "cache.ddioUpdate"),
    ("ddioAllocs", "cache.ddioAlloc"),
    ("directDramWrites", "cache.dramDirect"),
    ("mlcPrefetchFills", "cache.mlcPrefetchFill"),
    ("mlcSelfInvals", "cache.selfInval"),
]


def print_table(title: str, rows: list[tuple[str, str]]) -> None:
    print(f"\n{title}")
    width = max(len(r[0]) for r in rows)
    for label, value in rows:
        print(f"  {label:<{width}}  {value}")


# Sidecar format version this script understands (kept in sync with
# harness::totalsFormatVersion in src/harness/trace_artifacts.hh).
TOTALS_FORMAT_VERSION = 1


def check_totals(counts: Counter, sidecar_path: str,
                 dropped: int) -> int:
    with open(sidecar_path) as fh:
        totals = json.load(fh)

    failures = 0
    version = totals.get("formatVersion")
    if version != TOTALS_FORMAT_VERSION:
        print(f"FAIL sidecar formatVersion={version!r}; this script "
              f"understands version {TOTALS_FORMAT_VERSION} "
              "(regenerate the sidecar or update the tool)")
        failures += 1
    if dropped:
        print(f"FAIL ring truncation: {dropped} events were "
              "overwritten; counts cannot be cross-checked "
              "(raise the ring capacity or shorten the run)")
        failures += 1

    for field, name in CHECKS:
        if field not in totals:
            continue
        want = totals[field]
        got = counts.get(name, 0)
        status = "ok  " if got == want else "FAIL"
        if got != want:
            failures += 1
        print(f"{status} {name:<24} trace={got:<10} "
              f"totals.{field}={want}")

    # Every inbound DMA line takes exactly one placement path.
    if "pcieWrites" in totals:
        placed = (counts.get("cache.ddioUpdate", 0) +
                  counts.get("cache.ddioAlloc", 0) +
                  counts.get("cache.dramDirect", 0))
        want = totals["pcieWrites"]
        status = "ok  " if placed == want else "FAIL"
        if placed != want:
            failures += 1
        print(f"{status} {'placement sum':<24} trace={placed:<10} "
              f"totals.pcieWrites={want}")
    return failures


# sidecar tenant field -> trace event name (the per-tenant slice of
# CHECKS; cache events come from the shared hierarchy source and are
# not attributable to a tenant from the trace alone)
TENANT_CHECKS = [
    ("rxPackets", "nic.rx"),
    ("rxDrops", "nic.drop"),
    ("processedPackets", "nf.consume"),
]


def source_core(name: str) -> int | None:
    """Core id of a per-core source name (``system.nf<i>...``)."""
    m = re.match(r"system\.nf(\d+)(?:\.|$)", name)
    return int(m.group(1)) if m else None


def tenant_breakdown(trace: dict, sidecar_path: str,
                     dropped: int) -> int:
    """Per-tenant tables + exact cross-check; returns failure count."""
    with open(sidecar_path) as fh:
        totals = json.load(fh)
    tenants = totals.get("tenants")
    if not tenants:
        print(f"FAIL --by-tenant: sidecar {sidecar_path} has no "
              "'tenants' array (not a tenant-mode trace?)")
        return 1

    core_to_tenant: dict[int, str] = {}
    for t in tenants:
        for c in t.get("cores", []):
            core_to_tenant[c] = t["name"]

    tid_to_core: dict[int, int] = {}
    for s in trace.get("idio", {}).get("sources", []):
        core = source_core(s.get("name", ""))
        if core is not None:
            tid_to_core[s["tid"]] = core

    counts: dict[str, Counter] = {t["name"]: Counter()
                                  for t in tenants}
    pkt_tenant: dict[int, str] = {}
    per_pkt: dict[int, dict[str, tuple[float, float]]] = \
        defaultdict(dict)
    for ev in trace.get("traceEvents", []):
        name = ev.get("name", "")
        args = ev.get("args", {})
        tenant = None
        if name.startswith("nic.") or name.startswith("dpdk."):
            core = tid_to_core.get(ev.get("tid"))
            tenant = core_to_tenant.get(core)
        elif "core" in args:
            tenant = core_to_tenant.get(args["core"])
        if tenant is not None and ev.get("ph") in ("i", "X", "C"):
            counts[tenant][name] += 1

        pkt = args.get("pkt")
        if not pkt:
            continue
        if name not in per_pkt[pkt]:
            per_pkt[pkt][name] = (float(ev["ts"]),
                                  float(ev.get("dur", 0.0)))
        if tenant is not None and \
                (name == "nf.consume" or pkt not in pkt_tenant):
            pkt_tenant[pkt] = tenant

    # Per-tenant per-stage latencies: a packet belongs to the tenant
    # that consumed it (falling back to the receiving NIC's tenant).
    stages: dict[str, dict[str, list[float]]] = \
        {t["name"]: defaultdict(list) for t in tenants}
    for pkt, events in per_pkt.items():
        tenant = pkt_tenant.get(pkt)
        if tenant is None or "nic.rx" not in events:
            continue
        rx_ts = events["nic.rx"][0]
        if "nf.consume" in events:
            ts, dur = events["nf.consume"]
            stages[tenant]["total (rx -> consumed)"].append(
                ts + dur - rx_ts)
        if "nic.descWb" in events and "nf.consume" in events:
            stages[tenant]["ring wait (descWb -> consume)"].append(
                events["nf.consume"][0] - events["nic.descWb"][0])

    for t in tenants:
        name = t["name"]
        label = (f"Tenant '{name}' (slo={t.get('slo', '?')}, "
                 f"cores={t.get('cores', [])}, "
                 f"ways={t.get('ways', 0)})")
        rows = [(lbl, str(counts[name].get(ev, 0)))
                for lbl, ev in LIFECYCLE_ROWS
                if ev in ("nic.rx", "nic.drop", "nic.dmaPayload",
                          "nic.descWb", "nf.consume", "dpdk.alloc",
                          "dpdk.free")]
        rows.append(("sidecar p99 / p99.9 (us)",
                     f"{t.get('p99Us', 0):.3f} / "
                     f"{t.get('p999Us', 0):.3f}"))
        print_table(label, rows)
        for stage, vals in sorted(stages[name].items()):
            vals.sort()
            print(f"    {stage:<30} n={len(vals):<7} "
                  f"p50={percentile(vals, 50):8.3f}us  "
                  f"p99={percentile(vals, 99):8.3f}us  "
                  f"max={vals[-1]:8.3f}us")

    print()
    failures = 0
    if dropped:
        print(f"FAIL ring truncation: {dropped} events were "
              "overwritten; per-tenant counts cannot be "
              "cross-checked")
        failures += 1
    for t in tenants:
        for field, name in TENANT_CHECKS:
            if field not in t:
                continue
            want = t[field]
            got = counts[t["name"]].get(name, 0)
            status = "ok  " if got == want else "FAIL"
            if got != want:
                failures += 1
            print(f"{status} {t['name'] + '.' + name:<28} "
                  f"trace={got:<10} "
                  f"tenants[].{field}={want}")
    if not failures:
        print("\nall per-tenant trace counts match the sidecar")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", help="Chrome trace-event JSON "
                    "(from --trace=FILE)")
    ap.add_argument("--check-totals", metavar="SIDECAR",
                    help="assert trace counts match the "
                    "FILE.totals.json sidecar; exit 1 on mismatch")
    ap.add_argument("--by-tenant", action="store_true",
                    help="per-tenant breakdown and exact per-tenant "
                    "cross-check (needs the totals sidecar, taken "
                    "from --check-totals or TRACE.totals.json)")
    args = ap.parse_args()

    trace = load_trace(args.trace)
    counts = event_counts(trace)

    sources = trace.get("idio", {}).get("sources", [])
    dropped = sum(s.get("dropped", 0) for s in sources)
    recorded = sum(s.get("recorded", 0) for s in sources)

    print(f"{args.trace}: {recorded} events from "
          f"{len(sources)} sources"
          + (f" ({dropped} LOST to ring wraparound)" if dropped
             else ""))

    print_table("Placement outcomes (inbound DMA cachelines)",
                [(label, str(counts.get(name, 0)))
                 for label, name in PLACEMENT_ROWS])
    print_table("Packet lifecycle",
                [(label, str(counts.get(name, 0)))
                 for label, name in LIFECYCLE_ROWS])

    stages = stage_latencies(trace)
    if stages:
        rows = []
        for stage, vals in stages.items():
            vals.sort()
            rows.append((stage,
                         f"n={len(vals):<7} "
                         f"p50={percentile(vals, 50):8.3f}us  "
                         f"p90={percentile(vals, 90):8.3f}us  "
                         f"p99={percentile(vals, 99):8.3f}us  "
                         f"max={vals[-1]:8.3f}us"))
        print_table("Per-stage latency (per packet id)", rows)

    failures = 0
    if args.by_tenant:
        print()
        sidecar = args.check_totals or args.trace + ".totals.json"
        failures += tenant_breakdown(trace, sidecar, dropped)

    if args.check_totals:
        print()
        failures += check_totals(counts, args.check_totals, dropped)

    if args.check_totals or args.by_tenant:
        if failures:
            print(f"\n{failures} cross-check(s) FAILED")
            return 1
        print("\nall trace counts match harness::Totals")
    elif dropped:
        print("\nwarning: ring truncation — aggregate counts "
              "undercount the run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
