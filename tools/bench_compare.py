#!/usr/bin/env python3
"""Compare two perf_smoke JSON trajectory points and flag regressions.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.15]

Both files are BENCH_perf.json outputs (see bench/perf_smoke.cc). The
comparison walks every numeric leaf shared by both files and infers the
"good" direction from the metric name:

  higher is better   *PerSec, *speedup*, *_per_wall_sec*
  lower is better    nsPer*, *wallSec*, *WallSec*, events_per_packet,
                     *_p99_us-style simulated latency percentiles
  informational      ops, configs, jobs, hw_threads, deterministic,
                     packets, events, cores, rx_queues, flows,
                     link_pcie_ns, link_mesh_ns, micro_reps,
                     reallocations — never compared

A higher-is-better metric that dropped by more than --tolerance
(default 15%) is a hard regression: the script exits 1. Lower-is-better
wall-clock metrics (raw wall-clock / ns-per-op readings, which are just
the inverse view of the rates) are advisory: a bad move is printed as
ADVISORY but does not fail the run. This makes the gate strict on the
throughput trajectory while tolerating wall-clock jitter; the committed
trajectory is refreshed deliberately on a quiet host.

events_per_packet is the exception among lower-is-better metrics: it
is a host-independent work counter (the scheduler processes the same
events no matter the host, backend or worker count), so an increase
beyond tolerance is always a hard regression. Conversely, when either
file was produced on a single-hardware-thread host, the wall-clock
throughput comparisons are demoted to advisory — a 1-thread runner
time-slicing shard workers makes "sharded slower than unsharded"
readings meaningless — and the work counters carry the gate alone.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

INFORMATIONAL = {
    "ops",
    "configs",
    "jobs",
    "hw_threads",
    "deterministic",
    "packets",
    "events",
    "cores",
    "rx_queues",
    "flows",
    "link_pcie_ns",
    "link_mesh_ns",
    "micro_reps",
    "reallocations",
}

# Lower-is-better metrics that hard-gate (host-independent work
# counters, not wall-clock readings).
HARD_LOWER = {"events_per_packet"}

# Simulated latency percentiles (tenant.*.rpc_p99_us and friends):
# deterministic model outputs, so a rise beyond tolerance is a real
# behaviour regression and gates hard, lower-is-better.
SIM_LATENCY_RE = re.compile(r"_p\d+_us$")


def is_hard_lower(leaf: str) -> bool:
    return leaf in HARD_LOWER or bool(SIM_LATENCY_RE.search(leaf))


def flatten(node, prefix=""):
    """Yield (dotted-path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, val in node.items():
            yield from flatten(val, f"{prefix}{key}.")
    elif isinstance(node, bool):
        return  # bool is an int subclass in python; never compare
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), node


def direction(path: str):
    """Return +1 (higher better), -1 (lower better), or None (skip)."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf in INFORMATIONAL:
        return None
    # Throughput rates first: "packets_per_wall_sec" contains
    # "wall_sec" and must not fall into the lower-is-better bucket.
    if is_hard_lower(leaf):
        return -1
    if "per_wall_sec" in leaf:
        return +1
    if leaf.endswith("PerSec") or "speedup" in leaf:
        return +1
    if leaf.startswith("nsPer") or "wallsec" in leaf.lower():
        return -1
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional move in the bad direction (default 0.15)",
    )
    args = ap.parse_args()

    base_doc = json.loads(args.baseline.read_text())
    cur_doc = json.loads(args.current.read_text())
    base = dict(flatten(base_doc))
    cur = dict(flatten(cur_doc))

    # On a single-hardware-thread host every wall-clock rate is noise
    # (shard workers time-slice one core), so only the deterministic
    # work counters gate; the rates print as advisory.
    single_thread = (base_doc.get("hw_threads") == 1
                     or cur_doc.get("hw_threads") == 1)
    if single_thread:
        print("single-hardware-thread run detected: wall-clock "
              "metrics are advisory; work counters gate")

    regressions = []
    advisories = []
    compared = 0
    for path in sorted(base.keys() & cur.keys()):
        sense = direction(path)
        if sense is None:
            continue
        leaf = path.rsplit(".", 1)[-1]
        hard = is_hard_lower(leaf) or (sense > 0 and not single_thread)
        b, c = base[path], cur[path]
        if b == 0:
            continue
        change = (c - b) / abs(b)  # >0 means the value went up
        bad = -sense * change  # >0 means it moved the wrong way
        if bad <= args.tolerance:
            flag = "ok"
        elif hard:
            flag = "REGRESSION"
            regressions.append(path)
        else:
            flag = "ADVISORY"
            advisories.append(path)
        compared += 1
        print(f"{flag:>10}  {path:<42} {b:>14.4g} -> {c:>14.4g} "
              f"({change:+.1%})")

    if compared == 0:
        print("error: no comparable metrics shared by the two files",
              file=sys.stderr)
        return 2
    if advisories:
        print(f"\nadvisory (wall-clock jitter, not gating): "
              f"{', '.join(advisories)}")
    if regressions:
        print(f"\n{len(regressions)} throughput regression(s) beyond "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nall {compared} compared metrics within "
          f"{args.tolerance:.0%} (or advisory)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
