#!/usr/bin/env python3
"""Compare two perf_smoke JSON trajectory points and flag regressions.

Usage:
  tools/bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.15]

Both files are BENCH_perf.json outputs (see bench/perf_smoke.cc). The
comparison walks every numeric leaf shared by both files and infers the
"good" direction from the metric name:

  higher is better   *PerSec, *speedup*, *_per_wall_sec*
  lower is better    nsPer*, *wallSec*, *WallSec*
  informational      ops, configs, jobs, hw_threads, deterministic,
                     packets, cores, rx_queues, flows,
                     link_pcie_ns, link_mesh_ns — never compared

A higher-is-better metric that dropped by more than --tolerance
(default 15%) is a hard regression: the script exits 1. Lower-is-better
metrics (raw wall-clock / ns-per-op readings, which are just the
inverse view of the rates) are advisory: a bad move is printed as
ADVISORY but does not fail the run. This makes the gate strict on the
throughput trajectory while tolerating wall-clock jitter; the committed
trajectory is refreshed deliberately on a quiet host.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

INFORMATIONAL = {
    "ops",
    "configs",
    "jobs",
    "hw_threads",
    "deterministic",
    "packets",
    "cores",
    "rx_queues",
    "flows",
    "link_pcie_ns",
    "link_mesh_ns",
}


def flatten(node, prefix=""):
    """Yield (dotted-path, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, val in node.items():
            yield from flatten(val, f"{prefix}{key}.")
    elif isinstance(node, bool):
        return  # bool is an int subclass in python; never compare
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), node


def direction(path: str):
    """Return +1 (higher better), -1 (lower better), or None (skip)."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf in INFORMATIONAL:
        return None
    # Throughput rates first: "packets_per_wall_sec" contains
    # "wall_sec" and must not fall into the lower-is-better bucket.
    if "per_wall_sec" in leaf:
        return +1
    if leaf.endswith("PerSec") or "speedup" in leaf:
        return +1
    if leaf.startswith("nsPer") or "wallsec" in leaf.lower():
        return -1
    return None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional move in the bad direction (default 0.15)",
    )
    args = ap.parse_args()

    base = dict(flatten(json.loads(args.baseline.read_text())))
    cur = dict(flatten(json.loads(args.current.read_text())))

    regressions = []
    advisories = []
    compared = 0
    for path in sorted(base.keys() & cur.keys()):
        sense = direction(path)
        if sense is None:
            continue
        b, c = base[path], cur[path]
        if b == 0:
            continue
        change = (c - b) / abs(b)  # >0 means the value went up
        bad = -sense * change  # >0 means it moved the wrong way
        if bad <= args.tolerance:
            flag = "ok"
        elif sense > 0:
            flag = "REGRESSION"
            regressions.append(path)
        else:
            flag = "ADVISORY"
            advisories.append(path)
        compared += 1
        print(f"{flag:>10}  {path:<42} {b:>14.4g} -> {c:>14.4g} "
              f"({change:+.1%})")

    if compared == 0:
        print("error: no comparable metrics shared by the two files",
              file=sys.stderr)
        return 2
    if advisories:
        print(f"\nadvisory (wall-clock jitter, not gating): "
              f"{', '.join(advisories)}")
    if regressions:
        print(f"\n{len(regressions)} throughput regression(s) beyond "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nall {compared} compared metrics within "
          f"{args.tolerance:.0%} (or advisory)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
