# Empty dependencies file for idio_nf.
# This may be replaced when dependencies are built.
