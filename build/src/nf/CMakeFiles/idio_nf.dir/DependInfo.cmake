
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/copy_touch_drop.cc" "src/nf/CMakeFiles/idio_nf.dir/copy_touch_drop.cc.o" "gcc" "src/nf/CMakeFiles/idio_nf.dir/copy_touch_drop.cc.o.d"
  "/root/repo/src/nf/l2fwd.cc" "src/nf/CMakeFiles/idio_nf.dir/l2fwd.cc.o" "gcc" "src/nf/CMakeFiles/idio_nf.dir/l2fwd.cc.o.d"
  "/root/repo/src/nf/llc_antagonist.cc" "src/nf/CMakeFiles/idio_nf.dir/llc_antagonist.cc.o" "gcc" "src/nf/CMakeFiles/idio_nf.dir/llc_antagonist.cc.o.d"
  "/root/repo/src/nf/network_function.cc" "src/nf/CMakeFiles/idio_nf.dir/network_function.cc.o" "gcc" "src/nf/CMakeFiles/idio_nf.dir/network_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/idio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/idio_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/dpdk/CMakeFiles/idio_dpdk.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/idio_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/idio_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/idio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
