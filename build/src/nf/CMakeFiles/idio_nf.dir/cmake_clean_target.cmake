file(REMOVE_RECURSE
  "libidio_nf.a"
)
