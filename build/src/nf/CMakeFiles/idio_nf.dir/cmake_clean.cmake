file(REMOVE_RECURSE
  "CMakeFiles/idio_nf.dir/copy_touch_drop.cc.o"
  "CMakeFiles/idio_nf.dir/copy_touch_drop.cc.o.d"
  "CMakeFiles/idio_nf.dir/l2fwd.cc.o"
  "CMakeFiles/idio_nf.dir/l2fwd.cc.o.d"
  "CMakeFiles/idio_nf.dir/llc_antagonist.cc.o"
  "CMakeFiles/idio_nf.dir/llc_antagonist.cc.o.d"
  "CMakeFiles/idio_nf.dir/network_function.cc.o"
  "CMakeFiles/idio_nf.dir/network_function.cc.o.d"
  "libidio_nf.a"
  "libidio_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
