# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("stats")
subdirs("mem")
subdirs("cache")
subdirs("net")
subdirs("nic")
subdirs("gen")
subdirs("cpu")
subdirs("dpdk")
subdirs("nf")
subdirs("idio")
subdirs("harness")
