file(REMOVE_RECURSE
  "libidio_mem.a"
)
