# Empty dependencies file for idio_mem.
# This may be replaced when dependencies are built.
