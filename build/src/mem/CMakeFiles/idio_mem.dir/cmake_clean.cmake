file(REMOVE_RECURSE
  "CMakeFiles/idio_mem.dir/dram.cc.o"
  "CMakeFiles/idio_mem.dir/dram.cc.o.d"
  "libidio_mem.a"
  "libidio_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
