file(REMOVE_RECURSE
  "libidio_nic.a"
)
