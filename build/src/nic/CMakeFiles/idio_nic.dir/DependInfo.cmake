
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/classifier.cc" "src/nic/CMakeFiles/idio_nic.dir/classifier.cc.o" "gcc" "src/nic/CMakeFiles/idio_nic.dir/classifier.cc.o.d"
  "/root/repo/src/nic/dma.cc" "src/nic/CMakeFiles/idio_nic.dir/dma.cc.o" "gcc" "src/nic/CMakeFiles/idio_nic.dir/dma.cc.o.d"
  "/root/repo/src/nic/flow_director.cc" "src/nic/CMakeFiles/idio_nic.dir/flow_director.cc.o" "gcc" "src/nic/CMakeFiles/idio_nic.dir/flow_director.cc.o.d"
  "/root/repo/src/nic/nic.cc" "src/nic/CMakeFiles/idio_nic.dir/nic.cc.o" "gcc" "src/nic/CMakeFiles/idio_nic.dir/nic.cc.o.d"
  "/root/repo/src/nic/tlp.cc" "src/nic/CMakeFiles/idio_nic.dir/tlp.cc.o" "gcc" "src/nic/CMakeFiles/idio_nic.dir/tlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/idio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/idio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
