# Empty dependencies file for idio_nic.
# This may be replaced when dependencies are built.
