file(REMOVE_RECURSE
  "CMakeFiles/idio_nic.dir/classifier.cc.o"
  "CMakeFiles/idio_nic.dir/classifier.cc.o.d"
  "CMakeFiles/idio_nic.dir/dma.cc.o"
  "CMakeFiles/idio_nic.dir/dma.cc.o.d"
  "CMakeFiles/idio_nic.dir/flow_director.cc.o"
  "CMakeFiles/idio_nic.dir/flow_director.cc.o.d"
  "CMakeFiles/idio_nic.dir/nic.cc.o"
  "CMakeFiles/idio_nic.dir/nic.cc.o.d"
  "CMakeFiles/idio_nic.dir/tlp.cc.o"
  "CMakeFiles/idio_nic.dir/tlp.cc.o.d"
  "libidio_nic.a"
  "libidio_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
