file(REMOVE_RECURSE
  "libidio_harness.a"
)
