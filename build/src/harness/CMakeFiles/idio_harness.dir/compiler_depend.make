# Empty compiler generated dependencies file for idio_harness.
# This may be replaced when dependencies are built.
