file(REMOVE_RECURSE
  "CMakeFiles/idio_harness.dir/experiment_config.cc.o"
  "CMakeFiles/idio_harness.dir/experiment_config.cc.o.d"
  "CMakeFiles/idio_harness.dir/system.cc.o"
  "CMakeFiles/idio_harness.dir/system.cc.o.d"
  "CMakeFiles/idio_harness.dir/timeline.cc.o"
  "CMakeFiles/idio_harness.dir/timeline.cc.o.d"
  "libidio_harness.a"
  "libidio_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
