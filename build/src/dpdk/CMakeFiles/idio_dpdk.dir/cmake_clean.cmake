file(REMOVE_RECURSE
  "CMakeFiles/idio_dpdk.dir/mbuf.cc.o"
  "CMakeFiles/idio_dpdk.dir/mbuf.cc.o.d"
  "CMakeFiles/idio_dpdk.dir/rx_queue.cc.o"
  "CMakeFiles/idio_dpdk.dir/rx_queue.cc.o.d"
  "libidio_dpdk.a"
  "libidio_dpdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_dpdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
