# Empty compiler generated dependencies file for idio_dpdk.
# This may be replaced when dependencies are built.
