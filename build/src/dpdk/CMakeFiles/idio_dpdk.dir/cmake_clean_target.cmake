file(REMOVE_RECURSE
  "libidio_dpdk.a"
)
