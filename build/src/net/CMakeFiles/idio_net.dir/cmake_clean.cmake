file(REMOVE_RECURSE
  "CMakeFiles/idio_net.dir/flow.cc.o"
  "CMakeFiles/idio_net.dir/flow.cc.o.d"
  "CMakeFiles/idio_net.dir/headers.cc.o"
  "CMakeFiles/idio_net.dir/headers.cc.o.d"
  "CMakeFiles/idio_net.dir/packet.cc.o"
  "CMakeFiles/idio_net.dir/packet.cc.o.d"
  "CMakeFiles/idio_net.dir/pcap.cc.o"
  "CMakeFiles/idio_net.dir/pcap.cc.o.d"
  "libidio_net.a"
  "libidio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
