file(REMOVE_RECURSE
  "libidio_net.a"
)
