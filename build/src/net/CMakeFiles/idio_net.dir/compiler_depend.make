# Empty compiler generated dependencies file for idio_net.
# This may be replaced when dependencies are built.
