file(REMOVE_RECURSE
  "CMakeFiles/idio_cpu.dir/core.cc.o"
  "CMakeFiles/idio_cpu.dir/core.cc.o.d"
  "libidio_cpu.a"
  "libidio_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
