file(REMOVE_RECURSE
  "libidio_cpu.a"
)
