# Empty dependencies file for idio_cpu.
# This may be replaced when dependencies are built.
