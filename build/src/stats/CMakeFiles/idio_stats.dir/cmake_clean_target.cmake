file(REMOVE_RECURSE
  "libidio_stats.a"
)
