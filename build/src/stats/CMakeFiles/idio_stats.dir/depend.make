# Empty dependencies file for idio_stats.
# This may be replaced when dependencies are built.
