file(REMOVE_RECURSE
  "CMakeFiles/idio_stats.dir/histogram.cc.o"
  "CMakeFiles/idio_stats.dir/histogram.cc.o.d"
  "CMakeFiles/idio_stats.dir/json.cc.o"
  "CMakeFiles/idio_stats.dir/json.cc.o.d"
  "CMakeFiles/idio_stats.dir/latency_recorder.cc.o"
  "CMakeFiles/idio_stats.dir/latency_recorder.cc.o.d"
  "CMakeFiles/idio_stats.dir/registry.cc.o"
  "CMakeFiles/idio_stats.dir/registry.cc.o.d"
  "CMakeFiles/idio_stats.dir/series.cc.o"
  "CMakeFiles/idio_stats.dir/series.cc.o.d"
  "CMakeFiles/idio_stats.dir/table.cc.o"
  "CMakeFiles/idio_stats.dir/table.cc.o.d"
  "libidio_stats.a"
  "libidio_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
