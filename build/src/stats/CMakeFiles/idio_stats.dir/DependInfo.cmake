
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/idio_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/idio_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/json.cc" "src/stats/CMakeFiles/idio_stats.dir/json.cc.o" "gcc" "src/stats/CMakeFiles/idio_stats.dir/json.cc.o.d"
  "/root/repo/src/stats/latency_recorder.cc" "src/stats/CMakeFiles/idio_stats.dir/latency_recorder.cc.o" "gcc" "src/stats/CMakeFiles/idio_stats.dir/latency_recorder.cc.o.d"
  "/root/repo/src/stats/registry.cc" "src/stats/CMakeFiles/idio_stats.dir/registry.cc.o" "gcc" "src/stats/CMakeFiles/idio_stats.dir/registry.cc.o.d"
  "/root/repo/src/stats/series.cc" "src/stats/CMakeFiles/idio_stats.dir/series.cc.o" "gcc" "src/stats/CMakeFiles/idio_stats.dir/series.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/stats/CMakeFiles/idio_stats.dir/table.cc.o" "gcc" "src/stats/CMakeFiles/idio_stats.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
