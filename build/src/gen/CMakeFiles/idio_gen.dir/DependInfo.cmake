
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/traffic.cc" "src/gen/CMakeFiles/idio_gen.dir/traffic.cc.o" "gcc" "src/gen/CMakeFiles/idio_gen.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/idio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/idio_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/idio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
