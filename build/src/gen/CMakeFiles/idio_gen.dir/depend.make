# Empty dependencies file for idio_gen.
# This may be replaced when dependencies are built.
