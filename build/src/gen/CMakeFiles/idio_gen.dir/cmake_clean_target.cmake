file(REMOVE_RECURSE
  "libidio_gen.a"
)
