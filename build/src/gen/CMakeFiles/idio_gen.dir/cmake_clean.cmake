file(REMOVE_RECURSE
  "CMakeFiles/idio_gen.dir/traffic.cc.o"
  "CMakeFiles/idio_gen.dir/traffic.cc.o.d"
  "libidio_gen.a"
  "libidio_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
