file(REMOVE_RECURSE
  "CMakeFiles/idio_sim.dir/event_queue.cc.o"
  "CMakeFiles/idio_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/idio_sim.dir/logging.cc.o"
  "CMakeFiles/idio_sim.dir/logging.cc.o.d"
  "CMakeFiles/idio_sim.dir/rng.cc.o"
  "CMakeFiles/idio_sim.dir/rng.cc.o.d"
  "CMakeFiles/idio_sim.dir/sim_object.cc.o"
  "CMakeFiles/idio_sim.dir/sim_object.cc.o.d"
  "CMakeFiles/idio_sim.dir/simulation.cc.o"
  "CMakeFiles/idio_sim.dir/simulation.cc.o.d"
  "libidio_sim.a"
  "libidio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
