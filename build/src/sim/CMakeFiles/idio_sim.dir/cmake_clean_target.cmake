file(REMOVE_RECURSE
  "libidio_sim.a"
)
