# Empty dependencies file for idio_sim.
# This may be replaced when dependencies are built.
