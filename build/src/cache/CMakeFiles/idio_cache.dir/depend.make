# Empty dependencies file for idio_cache.
# This may be replaced when dependencies are built.
