file(REMOVE_RECURSE
  "CMakeFiles/idio_cache.dir/directory.cc.o"
  "CMakeFiles/idio_cache.dir/directory.cc.o.d"
  "CMakeFiles/idio_cache.dir/hierarchy.cc.o"
  "CMakeFiles/idio_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/idio_cache.dir/llc.cc.o"
  "CMakeFiles/idio_cache.dir/llc.cc.o.d"
  "CMakeFiles/idio_cache.dir/private_cache.cc.o"
  "CMakeFiles/idio_cache.dir/private_cache.cc.o.d"
  "CMakeFiles/idio_cache.dir/replacement.cc.o"
  "CMakeFiles/idio_cache.dir/replacement.cc.o.d"
  "CMakeFiles/idio_cache.dir/tag_array.cc.o"
  "CMakeFiles/idio_cache.dir/tag_array.cc.o.d"
  "libidio_cache.a"
  "libidio_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
