file(REMOVE_RECURSE
  "libidio_cache.a"
)
