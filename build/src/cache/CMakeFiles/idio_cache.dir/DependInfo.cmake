
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/directory.cc" "src/cache/CMakeFiles/idio_cache.dir/directory.cc.o" "gcc" "src/cache/CMakeFiles/idio_cache.dir/directory.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/idio_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/idio_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/cache/llc.cc" "src/cache/CMakeFiles/idio_cache.dir/llc.cc.o" "gcc" "src/cache/CMakeFiles/idio_cache.dir/llc.cc.o.d"
  "/root/repo/src/cache/private_cache.cc" "src/cache/CMakeFiles/idio_cache.dir/private_cache.cc.o" "gcc" "src/cache/CMakeFiles/idio_cache.dir/private_cache.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/cache/CMakeFiles/idio_cache.dir/replacement.cc.o" "gcc" "src/cache/CMakeFiles/idio_cache.dir/replacement.cc.o.d"
  "/root/repo/src/cache/tag_array.cc" "src/cache/CMakeFiles/idio_cache.dir/tag_array.cc.o" "gcc" "src/cache/CMakeFiles/idio_cache.dir/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/idio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idio_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/idio_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
