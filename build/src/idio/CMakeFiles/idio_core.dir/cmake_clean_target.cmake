file(REMOVE_RECURSE
  "libidio_core.a"
)
