file(REMOVE_RECURSE
  "CMakeFiles/idio_core.dir/config.cc.o"
  "CMakeFiles/idio_core.dir/config.cc.o.d"
  "CMakeFiles/idio_core.dir/controller.cc.o"
  "CMakeFiles/idio_core.dir/controller.cc.o.d"
  "CMakeFiles/idio_core.dir/prefetcher.cc.o"
  "CMakeFiles/idio_core.dir/prefetcher.cc.o.d"
  "CMakeFiles/idio_core.dir/way_tuner.cc.o"
  "CMakeFiles/idio_core.dir/way_tuner.cc.o.d"
  "libidio_core.a"
  "libidio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
