# Empty dependencies file for idio_core.
# This may be replaced when dependencies are built.
