# Empty dependencies file for firewall_offload.
# This may be replaced when dependencies are built.
