# Empty compiler generated dependencies file for ring_tuning.
# This may be replaced when dependencies are built.
