file(REMOVE_RECURSE
  "CMakeFiles/ring_tuning.dir/ring_tuning.cpp.o"
  "CMakeFiles/ring_tuning.dir/ring_tuning.cpp.o.d"
  "ring_tuning"
  "ring_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
