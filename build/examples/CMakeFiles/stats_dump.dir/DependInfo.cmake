
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/stats_dump.cpp" "examples/CMakeFiles/stats_dump.dir/stats_dump.cpp.o" "gcc" "examples/CMakeFiles/stats_dump.dir/stats_dump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/idio_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/idio_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/idio_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/dpdk/CMakeFiles/idio_dpdk.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/idio_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/idio/CMakeFiles/idio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/idio_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/idio_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/idio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/idio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/idio_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
