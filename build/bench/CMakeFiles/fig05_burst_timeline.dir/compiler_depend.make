# Empty compiler generated dependencies file for fig05_burst_timeline.
# This may be replaced when dependencies are built.
