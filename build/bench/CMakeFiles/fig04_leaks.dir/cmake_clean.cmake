file(REMOVE_RECURSE
  "CMakeFiles/fig04_leaks.dir/fig04_leaks.cc.o"
  "CMakeFiles/fig04_leaks.dir/fig04_leaks.cc.o.d"
  "fig04_leaks"
  "fig04_leaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_leaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
