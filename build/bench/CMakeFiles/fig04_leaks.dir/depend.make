# Empty dependencies file for fig04_leaks.
# This may be replaced when dependencies are built.
