file(REMOVE_RECURSE
  "CMakeFiles/ablation_recycling.dir/ablation_recycling.cc.o"
  "CMakeFiles/ablation_recycling.dir/ablation_recycling.cc.o.d"
  "ablation_recycling"
  "ablation_recycling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recycling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
