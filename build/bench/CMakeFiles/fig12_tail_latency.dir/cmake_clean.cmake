file(REMOVE_RECURSE
  "CMakeFiles/fig12_tail_latency.dir/fig12_tail_latency.cc.o"
  "CMakeFiles/fig12_tail_latency.dir/fig12_tail_latency.cc.o.d"
  "fig12_tail_latency"
  "fig12_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
