# Empty dependencies file for fig12_tail_latency.
# This may be replaced when dependencies are built.
