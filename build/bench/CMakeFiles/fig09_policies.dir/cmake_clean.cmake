file(REMOVE_RECURSE
  "CMakeFiles/fig09_policies.dir/fig09_policies.cc.o"
  "CMakeFiles/fig09_policies.dir/fig09_policies.cc.o.d"
  "fig09_policies"
  "fig09_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
