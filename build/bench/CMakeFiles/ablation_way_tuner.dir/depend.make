# Empty dependencies file for ablation_way_tuner.
# This may be replaced when dependencies are built.
