file(REMOVE_RECURSE
  "CMakeFiles/ablation_way_tuner.dir/ablation_way_tuner.cc.o"
  "CMakeFiles/ablation_way_tuner.dir/ablation_way_tuner.cc.o.d"
  "ablation_way_tuner"
  "ablation_way_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_way_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
