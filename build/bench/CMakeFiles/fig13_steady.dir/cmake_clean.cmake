file(REMOVE_RECURSE
  "CMakeFiles/fig13_steady.dir/fig13_steady.cc.o"
  "CMakeFiles/fig13_steady.dir/fig13_steady.cc.o.d"
  "fig13_steady"
  "fig13_steady.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_steady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
