# Empty dependencies file for fig13_steady.
# This may be replaced when dependencies are built.
