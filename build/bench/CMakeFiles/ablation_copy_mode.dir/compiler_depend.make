# Empty compiler generated dependencies file for ablation_copy_mode.
# This may be replaced when dependencies are built.
