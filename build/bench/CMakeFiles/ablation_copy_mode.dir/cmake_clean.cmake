file(REMOVE_RECURSE
  "CMakeFiles/ablation_copy_mode.dir/ablation_copy_mode.cc.o"
  "CMakeFiles/ablation_copy_mode.dir/ablation_copy_mode.cc.o.d"
  "ablation_copy_mode"
  "ablation_copy_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copy_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
