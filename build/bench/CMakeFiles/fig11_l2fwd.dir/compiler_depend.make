# Empty compiler generated dependencies file for fig11_l2fwd.
# This may be replaced when dependencies are built.
