file(REMOVE_RECURSE
  "CMakeFiles/fig11_l2fwd.dir/fig11_l2fwd.cc.o"
  "CMakeFiles/fig11_l2fwd.dir/fig11_l2fwd.cc.o.d"
  "fig11_l2fwd"
  "fig11_l2fwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_l2fwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
