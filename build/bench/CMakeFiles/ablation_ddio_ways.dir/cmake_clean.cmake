file(REMOVE_RECURSE
  "CMakeFiles/ablation_ddio_ways.dir/ablation_ddio_ways.cc.o"
  "CMakeFiles/ablation_ddio_ways.dir/ablation_ddio_ways.cc.o.d"
  "ablation_ddio_ways"
  "ablation_ddio_ways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ddio_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
