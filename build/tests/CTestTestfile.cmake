# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_dpdk[1]_include.cmake")
include("/root/repo/build/tests/test_nf[1]_include.cmake")
include("/root/repo/build/tests/test_idio[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
