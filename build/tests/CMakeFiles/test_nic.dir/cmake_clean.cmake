file(REMOVE_RECURSE
  "CMakeFiles/test_nic.dir/nic/test_classifier.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_classifier.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/test_dma.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_dma.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/test_flow_director.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_flow_director.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/test_nic.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_nic.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/test_rx_ring.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_rx_ring.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/test_rx_tap.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_rx_tap.cc.o.d"
  "CMakeFiles/test_nic.dir/nic/test_tlp.cc.o"
  "CMakeFiles/test_nic.dir/nic/test_tlp.cc.o.d"
  "test_nic"
  "test_nic.pdb"
  "test_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
