file(REMOVE_RECURSE
  "CMakeFiles/test_nf.dir/nf/test_antagonist.cc.o"
  "CMakeFiles/test_nf.dir/nf/test_antagonist.cc.o.d"
  "CMakeFiles/test_nf.dir/nf/test_copy_touch_drop.cc.o"
  "CMakeFiles/test_nf.dir/nf/test_copy_touch_drop.cc.o.d"
  "CMakeFiles/test_nf.dir/nf/test_network_functions.cc.o"
  "CMakeFiles/test_nf.dir/nf/test_network_functions.cc.o.d"
  "test_nf"
  "test_nf.pdb"
  "test_nf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
