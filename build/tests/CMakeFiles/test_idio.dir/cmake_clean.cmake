file(REMOVE_RECURSE
  "CMakeFiles/test_idio.dir/idio/test_config.cc.o"
  "CMakeFiles/test_idio.dir/idio/test_config.cc.o.d"
  "CMakeFiles/test_idio.dir/idio/test_controller.cc.o"
  "CMakeFiles/test_idio.dir/idio/test_controller.cc.o.d"
  "CMakeFiles/test_idio.dir/idio/test_cpu_paced_prefetcher.cc.o"
  "CMakeFiles/test_idio.dir/idio/test_cpu_paced_prefetcher.cc.o.d"
  "CMakeFiles/test_idio.dir/idio/test_fsm.cc.o"
  "CMakeFiles/test_idio.dir/idio/test_fsm.cc.o.d"
  "CMakeFiles/test_idio.dir/idio/test_prefetcher.cc.o"
  "CMakeFiles/test_idio.dir/idio/test_prefetcher.cc.o.d"
  "CMakeFiles/test_idio.dir/idio/test_way_tuner.cc.o"
  "CMakeFiles/test_idio.dir/idio/test_way_tuner.cc.o.d"
  "test_idio"
  "test_idio.pdb"
  "test_idio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
