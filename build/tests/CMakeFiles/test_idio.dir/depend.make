# Empty dependencies file for test_idio.
# This may be replaced when dependencies are built.
