file(REMOVE_RECURSE
  "CMakeFiles/test_dpdk.dir/dpdk/test_mbuf.cc.o"
  "CMakeFiles/test_dpdk.dir/dpdk/test_mbuf.cc.o.d"
  "CMakeFiles/test_dpdk.dir/dpdk/test_rx_queue.cc.o"
  "CMakeFiles/test_dpdk.dir/dpdk/test_rx_queue.cc.o.d"
  "test_dpdk"
  "test_dpdk.pdb"
  "test_dpdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
