file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_histogram.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_json.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_json.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_latency_recorder.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_latency_recorder.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_registry.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_registry.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_series.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_series.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_table.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_table.cc.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
