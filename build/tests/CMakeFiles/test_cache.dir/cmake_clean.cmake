file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache/test_directory.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_directory.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_cpu.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_cpu.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_invalidate.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_invalidate.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_pcie.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_pcie.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_prefetch.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_prefetch.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_properties.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_hierarchy_properties.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_llc.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_llc.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_replacement.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_replacement.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_tag_array.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_tag_array.cc.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
